//! hsbp-parallel: a persistent worker pool with degree-aware scheduling for
//! the parallel MCMC sweep.
//!
//! The vendored rayon shim spawns fresh OS threads for every parallel section
//! (several per sweep) and splits work into contiguous equal-count chunks — a
//! pathological schedule on power-law DCSBM graphs where per-vertex proposal
//! cost is proportional to degree. This crate replaces it with:
//!
//! * a **persistent pool**: workers are spawned once and parked on a condvar
//!   between sections; a section wakes them with a latch (epoch bump), the
//!   caller participates as worker 0, and a barrier waits for stragglers;
//! * **cost-weighted chunks**: section boundaries come from a monotone cost
//!   prefix-sum ([`ChunkPlan`]) — for vertex sweeps that prefix is the CSR
//!   degree offsets, available for free — so every steal-unit carries roughly
//!   equal proposal work;
//! * **atomic grab-sharing**: workers claim chunks from a shared atomic
//!   counter, so a worker stuck on a hub chunk simply stops claiming while
//!   the others drain the queue — no idle-at-the-barrier skew;
//! * **pool-resident scratch** ([`with_resident`]): per-worker scratch (the
//!   `ProposalArena` from the zero-allocation hot path) is leased once per
//!   worker lifetime via a thread-local typed store, not once per section.
//!
//! Determinism: the pool never changes *what* is computed, only *where*. All
//! callers write results into fixed per-item output slots and derive
//! randomness from counter RNG keyed by item index, so results are
//! bit-identical across thread counts and schedules.
//!
//! Thread count resolution: `HSBP_THREADS` env var if set (>= 1), else the
//! host's available parallelism. [`pool_for`] maps a `SbpConfig::threads`
//! value (0 = auto) to a shared pool instance.

#![deny(clippy::unwrap_used, clippy::expect_used)]

mod chunk;

pub use chunk::ChunkPlan;

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Oversubscription factor: target chunks per worker, so grab-sharing has
/// enough granularity to rebalance around hub chunks.
const CHUNKS_PER_WORKER: usize = 8;

thread_local! {
    /// Set while this thread is executing a pool section. Nested sections
    /// (e.g. a shard worker running an inner `run_sbp`) execute inline
    /// instead of deadlocking on the section latch.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// Per-thread typed scratch store backing [`with_resident`].
    static RESIDENT: RefCell<HashMap<std::any::TypeId, Box<dyn Any>>> =
        RefCell::new(HashMap::new());
}

#[inline]
fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Recover a mutex guard even if a panicking worker poisoned it; all guarded
/// state stays consistent under panics (counters and payload vectors only).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Run `body` with `&mut S` scratch that persists on this thread across
/// sections ("leased once per worker lifetime"). The slot is keyed by the
/// scratch type; `init` runs only the first time a thread sees the type.
/// Re-entrant calls for the *same* type construct a fresh scratch (the outer
/// lease holds the resident one) — correctness is preserved, reuse is not.
pub fn with_resident<S: Any, R>(init: impl FnOnce() -> S, body: impl FnOnce(&mut S) -> R) -> R {
    let key = std::any::TypeId::of::<S>();
    let slot = RESIDENT.with(|m| m.borrow_mut().remove(&key));
    let mut scratch: Box<S> = match slot.and_then(|b| b.downcast::<S>().ok()) {
        Some(b) => b,
        None => Box::new(init()),
    };
    let out = body(&mut scratch);
    RESIDENT.with(|m| m.borrow_mut().insert(key, scratch as Box<dyn Any>));
    out
}

/// Resolved thread count: `HSBP_THREADS` if set and >= 1, else host
/// parallelism. Read once; later env changes don't retune running pools.
pub fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("HSBP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// The process-wide pool at [`configured_threads`].
pub fn global() -> &'static ThreadPool {
    pool_with(configured_threads())
}

/// A shared pool with exactly `threads` workers (min 1). Pools are created on
/// first use and live for the process; at most a handful of distinct sizes
/// exist (config overrides + the global), so the leak is bounded.
pub fn pool_with(threads: usize) -> &'static ThreadPool {
    static POOLS: OnceLock<Mutex<HashMap<usize, &'static ThreadPool>>> = OnceLock::new();
    let threads = threads.max(1);
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = lock(pools);
    map.entry(threads)
        .or_insert_with(|| Box::leak(Box::new(ThreadPool::new(threads))))
}

/// Map a `SbpConfig::threads` value to a pool: 0 = auto ([`global`]),
/// otherwise a pool of exactly that size.
pub fn pool_for(threads: usize) -> &'static ThreadPool {
    if threads == 0 {
        global()
    } else {
        pool_with(threads)
    }
}

/// Scheduling counters since the last [`ThreadPool::reset_stats`].
///
/// `steals` counts chunks executed by a worker other than the chunk's "home"
/// worker (its slot under a static round-robin assignment) — i.e. how often
/// grab-sharing actually rebalanced. Imbalance is, per section, the max
/// worker busy-weight divided by the mean; 1.0 is a perfect balance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    pub sections: u64,
    pub chunks: u64,
    pub steals: u64,
    pub max_imbalance: f64,
    pub mean_imbalance: f64,
}

#[derive(Default)]
struct StatsAgg {
    sections: u64,
    chunks: u64,
    steals: u64,
    imbalance_sum: f64,
    imbalance_max: f64,
}

/// Latch state shared between the caller and parked workers.
struct State {
    /// Bumped once per section; workers run a job when they see a new epoch.
    epoch: u64,
    /// Type-erased section body; `Some` exactly while a section is live.
    /// Lifetime is erased — sound because `run` does not return (or unwind)
    /// until every worker has finished the section.
    job: Option<&'static (dyn Fn(usize) + Sync)>,
    /// Workers still inside the current section.
    active: usize,
    /// Panic payloads caught from workers this section.
    panics: Vec<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
}

/// Persistent worker pool. Workers are spawned at construction, parked
/// between sections, and joined only at process exit (pools are `'static`).
pub struct ThreadPool {
    threads: usize,
    shared: &'static Shared,
    /// Serializes sections from concurrent callers.
    section: Mutex<()>,
    stats: Mutex<StatsAgg>,
}

/// Raw pointer that asserts cross-thread use; safety is argued at each use
/// site (disjoint index claims over a fully covered range).
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Per-section claim queue + balance accounting.
struct SectionCtx<'p> {
    plan: &'p ChunkPlan,
    next: AtomicUsize,
    steals: AtomicU64,
    busy: Vec<AtomicU64>,
    threads: usize,
}

impl<'p> SectionCtx<'p> {
    fn new(plan: &'p ChunkPlan, threads: usize) -> Self {
        Self {
            plan,
            next: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            busy: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            threads,
        }
    }

    /// Home worker of chunk `c` under static round-robin assignment; a chunk
    /// executed elsewhere counts as a steal.
    #[inline]
    fn home(&self, c: usize) -> usize {
        c * self.threads / self.plan.num_chunks().max(1)
    }

    /// Claim chunks until the queue drains, invoking `visit` per chunk range.
    fn drive(&self, worker: usize, mut visit: impl FnMut(Range<usize>)) {
        let chunks = self.plan.num_chunks();
        loop {
            let c = self.next.fetch_add(1, Ordering::Relaxed);
            if c >= chunks {
                break;
            }
            if self.home(c) != worker {
                self.steals.fetch_add(1, Ordering::Relaxed);
            }
            visit(self.plan.chunk(c));
            self.busy[worker].fetch_add(self.plan.weight(c).max(1), Ordering::Relaxed);
        }
    }
}

/// Blocks until every worker has left the section, even when the caller's
/// own share of the work panics — the erased-lifetime job must not outlive
/// `run`'s stack frame.
struct SectionBarrier<'a>(&'a Shared);

impl Drop for SectionBarrier<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.0.state);
        while st.active > 0 {
            st = match self.0.done.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        st.job = None;
    }
}

fn worker_loop(shared: &'static Shared, id: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    break;
                }
                st = match shared.work.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            seen = st.epoch;
            match st.job {
                Some(j) => j,
                None => continue,
            }
        };
        IN_POOL.with(|f| f.set(true));
        let result = catch_unwind(AssertUnwindSafe(|| job(id)));
        IN_POOL.with(|f| f.set(false));
        let mut st = lock(&shared.state);
        if let Err(payload) = result {
            st.panics.push(payload);
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

impl ThreadPool {
    fn new(threads: usize) -> Self {
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                panics: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }));
        for id in 1..threads {
            let builder = std::thread::Builder::new().name(format!("hsbp-worker-{id}"));
            // A failed spawn leaves the pool with fewer helpers; sections
            // still complete because the caller participates and grab-sharing
            // never waits on a specific worker — but `active` must only count
            // threads that exist, so treat spawn failure as fatal.
            if let Err(e) = builder.spawn(move || worker_loop(shared, id)) {
                panic!("hsbp-parallel: failed to spawn worker {id}: {e}");
            }
        }
        Self {
            threads,
            shared,
            section: Mutex::new(()),
            stats: Mutex::new(StatsAgg::default()),
        }
    }

    /// Number of workers (including the participating caller).
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Default chunk-count target for plans executed on this pool.
    #[inline]
    pub fn chunk_target(&self) -> usize {
        self.threads * CHUNKS_PER_WORKER
    }

    /// Snapshot scheduling stats accumulated since the last reset.
    pub fn stats(&self) -> PoolStats {
        let agg = lock(&self.stats);
        PoolStats {
            sections: agg.sections,
            chunks: agg.chunks,
            steals: agg.steals,
            max_imbalance: agg.imbalance_max,
            mean_imbalance: if agg.sections > 0 {
                agg.imbalance_sum / agg.sections as f64
            } else {
                0.0
            },
        }
    }

    pub fn reset_stats(&self) {
        *lock(&self.stats) = StatsAgg::default();
    }

    fn record(&self, ctx: &SectionCtx<'_>) {
        let weights: Vec<u64> = ctx.busy.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = weights.iter().sum();
        let max = weights.iter().copied().max().unwrap_or(0);
        let mut agg = lock(&self.stats);
        agg.sections += 1;
        agg.chunks += ctx.plan.num_chunks() as u64;
        agg.steals += ctx.steals.load(Ordering::Relaxed);
        if total > 0 {
            let mean = total as f64 / self.threads as f64;
            let imbalance = max as f64 / mean;
            agg.imbalance_sum += imbalance;
            agg.imbalance_max = agg.imbalance_max.max(imbalance);
        }
    }

    /// Run one section: wake all workers, invoke `task(worker_id)` on every
    /// worker (the caller runs as worker 0), wait for all to finish. Panics
    /// from any worker are re-raised on the caller with their **original
    /// payload** (the caller's own panic takes precedence).
    pub fn run(&self, task: &(dyn Fn(usize) + Sync)) {
        if self.threads <= 1 || in_pool() {
            task(0);
            return;
        }
        let _section = lock(&self.section);
        // SAFETY: the job reference escapes to worker threads with an erased
        // lifetime, but `run` blocks (via SectionBarrier, even on unwind)
        // until `active == 0`, i.e. no worker can touch it afterwards.
        let job: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        {
            let mut st = lock(&self.shared.state);
            st.epoch += 1;
            st.job = Some(job);
            st.active = self.threads - 1;
            st.panics.clear();
            self.shared.work.notify_all();
        }
        let caller_result;
        {
            let _barrier = SectionBarrier(self.shared);
            IN_POOL.with(|f| f.set(true));
            caller_result = catch_unwind(AssertUnwindSafe(|| task(0)));
            IN_POOL.with(|f| f.set(false));
        }
        let mut worker_panics = std::mem::take(&mut lock(&self.shared.state).panics);
        match caller_result {
            Err(payload) => resume_unwind(payload),
            Ok(()) => {
                if !worker_panics.is_empty() {
                    resume_unwind(worker_panics.remove(0));
                }
            }
        }
    }

    /// `parallel_for_indexed`: evaluate `f(scratch, i)` for every `i` in the
    /// plan's range and collect results **in index order**, scheduling
    /// cost-weighted chunks dynamically. `init` builds one scratch per worker
    /// per section.
    pub fn map_indexed<T, S, I, F>(&self, plan: &ChunkPlan, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let len = plan.len();
        if self.threads <= 1 || len < 2 || in_pool() {
            let mut scratch = init();
            return (0..len).map(|i| f(&mut scratch, i)).collect();
        }
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
        // SAFETY: every index in 0..len is written exactly once below before
        // the vec is read (chunks partition the range; each chunk is claimed
        // by exactly one worker). On panic the vec leaks, it is never read.
        unsafe { out.set_len(len) };
        let out_ptr = SendPtr(out.as_mut_ptr());
        let ctx = SectionCtx::new(plan, self.threads);
        self.run(&|worker| {
            let mut scratch = init();
            ctx.drive(worker, |range| {
                for i in range {
                    // SAFETY: `i` is claimed by exactly this worker (disjoint
                    // chunks), in bounds by plan invariant.
                    unsafe { (*out_ptr.get().add(i)).write(f(&mut scratch, i)) };
                }
            });
        });
        self.record(&ctx);
        // SAFETY: all len slots initialized (run returned without panicking).
        unsafe { assume_init_vec(out) }
    }

    /// [`map_indexed`] with **pool-resident** scratch: each worker leases one
    /// `S` for its lifetime (thread-local, keyed by type) instead of
    /// constructing one per section.
    pub fn map_indexed_resident<T, S, I, F>(&self, plan: &ChunkPlan, init: I, f: F) -> Vec<T>
    where
        T: Send,
        S: Any,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let len = plan.len();
        if self.threads <= 1 || len < 2 || in_pool() {
            return with_resident(init, |scratch| (0..len).map(|i| f(scratch, i)).collect());
        }
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
        // SAFETY: as in `map_indexed`.
        unsafe { out.set_len(len) };
        let out_ptr = SendPtr(out.as_mut_ptr());
        let ctx = SectionCtx::new(plan, self.threads);
        self.run(&|worker| {
            with_resident(&init, |scratch| {
                ctx.drive(worker, |range| {
                    for i in range {
                        // SAFETY: as in `map_indexed`.
                        unsafe { (*out_ptr.get().add(i)).write(f(scratch, i)) };
                    }
                });
            });
        });
        self.record(&ctx);
        // SAFETY: all len slots initialized.
        unsafe { assume_init_vec(out) }
    }

    /// [`map_indexed_resident`] at *chunk* granularity: `f` receives each
    /// claimed chunk's index range and must push exactly one `T` per index
    /// (in order) into the output buffer. Results land **in index order**.
    ///
    /// This is the batched-proposal primitive: a sweep body can stage work
    /// for the whole chunk (draw every counter-RNG proposal first, then
    /// gather/evaluate/accept), amortizing dispatch across the batch instead
    /// of paying it per item — while the chunk schedule, and therefore the
    /// result, stays identical to the per-index entry points.
    ///
    /// # Panics
    /// Panics if `f` leaves a different number of results than the chunk has
    /// indices.
    pub fn map_chunked_resident<T, S, I, F>(&self, plan: &ChunkPlan, init: I, f: F) -> Vec<T>
    where
        T: Send,
        S: Any,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, Range<usize>, &mut Vec<T>) + Sync,
    {
        let len = plan.len();
        if self.threads <= 1 || len < 2 || in_pool() {
            return with_resident(init, |scratch| {
                let mut out = Vec::with_capacity(len);
                let mut buf = Vec::new();
                for c in 0..plan.num_chunks() {
                    let range = plan.chunk(c);
                    buf.clear();
                    f(scratch, range.clone(), &mut buf);
                    assert_eq!(
                        buf.len(),
                        range.len(),
                        "chunk body must produce one result per index"
                    );
                    out.append(&mut buf);
                }
                out
            });
        }
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
        // SAFETY: as in `map_indexed` — chunks partition 0..len and each is
        // claimed by exactly one worker, which writes every slot of its
        // range below (the buffer length is asserted first).
        unsafe { out.set_len(len) };
        let out_ptr = SendPtr(out.as_mut_ptr());
        let ctx = SectionCtx::new(plan, self.threads);
        self.run(&|worker| {
            with_resident(&init, |scratch| {
                let mut buf: Vec<T> = Vec::new();
                ctx.drive(worker, |range| {
                    buf.clear();
                    f(scratch, range.clone(), &mut buf);
                    assert_eq!(
                        buf.len(),
                        range.len(),
                        "chunk body must produce one result per index"
                    );
                    for (j, item) in buf.drain(..).enumerate() {
                        // SAFETY: slot claimed by exactly this worker, in
                        // bounds by plan invariant.
                        unsafe { (*out_ptr.get().add(range.start + j)).write(item) };
                    }
                });
            });
        });
        self.record(&ctx);
        // SAFETY: all len slots initialized.
        unsafe { assume_init_vec(out) }
    }

    /// Map over owned items (order-preserving), consuming the input vec.
    /// Equal-count chunks; use [`map_indexed`] with a cost plan when per-item
    /// cost is skewed.
    pub fn map_vec<T, U, S, I, F>(&self, items: Vec<T>, init: I, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> U + Sync,
    {
        let len = items.len();
        if self.threads <= 1 || len < 2 || in_pool() {
            let mut scratch = init();
            return items
                .into_iter()
                .map(|item| f(&mut scratch, item))
                .collect();
        }
        let plan = ChunkPlan::even(len, self.chunk_target());
        let mut items = ManuallyDrop::new(items);
        let in_ptr = SendPtr(items.as_mut_ptr());
        let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(len);
        // SAFETY: as in `map_indexed`; additionally every input slot is moved
        // out exactly once (same disjoint-claim argument). On panic both vecs
        // leak their elements — a leak, not a double free.
        unsafe { out.set_len(len) };
        let out_ptr = SendPtr(out.as_mut_ptr());
        let ctx = SectionCtx::new(&plan, self.threads);
        self.run(&|worker| {
            let mut scratch = init();
            ctx.drive(worker, |range| {
                for i in range {
                    // SAFETY: slot `i` is read and written exactly once.
                    let item = unsafe { in_ptr.get().add(i).read() };
                    unsafe { (*out_ptr.get().add(i)).write(f(&mut scratch, item)) };
                }
            });
        });
        self.record(&ctx);
        // All elements moved out; release only the allocation.
        // SAFETY: len 0 <= capacity; elements already consumed above.
        unsafe { items.set_len(0) };
        drop(ManuallyDrop::into_inner(items));
        // SAFETY: all len slots initialized.
        unsafe { assume_init_vec(out) }
    }
}

/// SAFETY (caller): every element of `v` must be initialized.
unsafe fn assume_init_vec<T>(v: Vec<MaybeUninit<T>>) -> Vec<T> {
    let mut v = ManuallyDrop::new(v);
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    // SAFETY: MaybeUninit<T> has the same layout as T; all elements are
    // initialized per the caller contract; ManuallyDrop prevents double free.
    unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, cap) }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn map_indexed_matches_serial_any_thread_count() {
        let plan4 =
            ChunkPlan::from_costs(&(0..997).map(|i| (i % 13) as u64).collect::<Vec<_>>(), 32);
        let expected: Vec<u64> = (0..997u64).map(|i| i * i + 1).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = pool_with(threads);
            let got = pool.map_indexed(&plan4, || (), |(), i| (i as u64) * (i as u64) + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_vec_preserves_order_and_moves_items() {
        let items: Vec<String> = (0..200).map(|i| format!("item-{i}")).collect();
        let pool = pool_with(4);
        let out = pool.map_vec(items, || (), |(), s| s + "!");
        assert_eq!(out.len(), 200);
        assert_eq!(out[0], "item-0!");
        assert_eq!(out[199], "item-199!");
    }

    #[test]
    fn panic_payload_is_preserved() {
        let pool = pool_with(4);
        let plan = ChunkPlan::even(64, 16);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(
                &plan,
                || (),
                |(), i| {
                    if i == 37 {
                        panic!("distinctive payload 37");
                    }
                    i
                },
            )
        }));
        let payload = result.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload must be a string");
        assert!(msg.contains("distinctive payload 37"), "got: {msg}");
    }

    #[test]
    fn pool_survives_panicking_section() {
        let pool = pool_with(2);
        let plan = ChunkPlan::even(16, 8);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(&plan, || (), |(), _| panic!("boom"))
        }));
        // Pool must still schedule correctly after a panicked section.
        let got = pool.map_indexed(&plan, || (), |(), i| i * 2);
        assert_eq!(got, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn resident_scratch_is_reused_across_sections() {
        // Count scratch constructions: a resident lease constructs at most
        // one scratch per thread regardless of section count.
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Default)]
        struct Marker(#[allow(dead_code)] u8);
        let pool = pool_with(3);
        let plan = ChunkPlan::even(300, pool.chunk_target());
        for _ in 0..5 {
            let _ = pool.map_indexed_resident(
                &plan,
                || {
                    BUILDS.fetch_add(1, Ordering::Relaxed);
                    Marker::default()
                },
                |_, i| i,
            );
        }
        assert!(
            BUILDS.load(Ordering::Relaxed) <= 3,
            "resident scratch rebuilt per section: {} builds for 5 sections",
            BUILDS.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn map_chunked_matches_map_indexed_any_thread_count() {
        let plan =
            ChunkPlan::from_costs(&(0..997).map(|i| (i % 13) as u64).collect::<Vec<_>>(), 32);
        let expected: Vec<u64> = (0..997u64).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = pool_with(threads);
            let got = pool.map_chunked_resident(
                &plan,
                || (),
                |(), range, out: &mut Vec<u64>| {
                    // Two-stage chunk body: stage values, then emit.
                    let staged: Vec<u64> = range.map(|i| i as u64).collect();
                    out.extend(staged.iter().map(|&i| i * 3 + 1));
                },
            );
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_chunked_panics_on_wrong_arity() {
        let pool = pool_with(1);
        let plan = ChunkPlan::even(16, 8);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_chunked_resident(
                &plan,
                || (),
                |(), _range, out: &mut Vec<usize>| {
                    out.push(0); // one result for the whole chunk: wrong
                },
            )
        }));
        assert!(result.is_err(), "arity violation must panic");
    }

    #[test]
    fn nested_sections_run_inline() {
        let pool = pool_with(4);
        let plan = ChunkPlan::even(8, 4);
        let nested_ok = AtomicBool::new(true);
        let out = pool.map_indexed(
            &plan,
            || (),
            |(), i| {
                // Nested parallel call from inside a worker: must not deadlock.
                let inner = pool.map_indexed(&ChunkPlan::even(4, 2), || (), |(), j| j + i);
                if inner != vec![i, i + 1, i + 2, i + 3] {
                    nested_ok.store(false, Ordering::Relaxed);
                }
                i
            },
        );
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert!(nested_ok.load(Ordering::Relaxed));
    }

    #[test]
    fn stats_are_recorded() {
        let pool = pool_with(4);
        pool.reset_stats();
        let plan = ChunkPlan::even(1000, pool.chunk_target());
        let _ = pool.map_indexed(&plan, || (), |(), i| i);
        let stats = pool.stats();
        assert_eq!(stats.sections, 1);
        assert_eq!(stats.chunks, plan.num_chunks() as u64);
        assert!(stats.max_imbalance >= 1.0);
        pool.reset_stats();
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn empty_and_singleton_ranges() {
        let pool = pool_with(4);
        let empty: Vec<usize> = pool.map_indexed(&ChunkPlan::even(0, 8), || (), |(), i| i);
        assert!(empty.is_empty());
        let one: Vec<usize> = pool.map_indexed(&ChunkPlan::even(1, 8), || (), |(), i| i + 7);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn with_resident_reentrancy_is_safe() {
        let out = with_resident(
            || vec![1u32],
            |outer| {
                outer.push(2);
                // Same type re-entered: gets a fresh scratch, no RefCell panic.
                with_resident(|| vec![10u32], |inner| inner.len()) + outer.len()
            },
        );
        assert_eq!(out, 3);
    }
}
