//! Parallel per-shard SBP execution with emulated distributed ranks.
//!
//! Each shard is an independent [`hsbp_core::run_sbp`] job; the worker pool runs them
//! in parallel on the host. For the strong-scaling story the host's core
//! count does not matter: each shard's run carries `hsbp-timing`'s
//! simulated cost account, and its **serial** simulated time becomes that
//! emulated rank's cost. Scheduling those costs onto `r` ranks (greedy
//! longest-processing-time, like a distributed work queue) yields the
//! emulated makespan curve reported in [`EmulatedScaling`].

use crate::{partition::ShardPlan, ShardConfig};
use hsbp_core::{run_sbp, SbpConfig, SbpResult};
use hsbp_timing::sim::makespan;
use hsbp_timing::Chunking;

/// splitmix64-style word mixer for deriving per-shard seeds.
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which account a shard's cost figure came from. The simulated account is
/// in abstract cost units; the wall-clock fallback is in host seconds. The
/// two are **not** comparable, so a curve mixing them reports no speedups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostBasis {
    /// `hsbp-timing`'s simulated serial cost (abstract units).
    Simulated,
    /// Wall-clock seconds — used when the config's `sim_thread_counts` does
    /// not track 1 thread. Fine on its own, bogus when mixed with
    /// [`CostBasis::Simulated`] entries.
    WallClock,
    /// No cost available: the shard failed permanently and was dropped.
    Missing,
}

/// Emulated strong scaling of the per-shard phase over distributed ranks.
#[derive(Debug, Clone)]
pub struct EmulatedScaling {
    /// Cost of each shard's SBP run (shard order; see `per_shard_basis` for
    /// units). Dropped shards contribute 0.
    pub per_shard_cost: Vec<f64>,
    /// Which account each `per_shard_cost` entry came from.
    pub per_shard_basis: Vec<CostBasis>,
    /// `(ranks, emulated makespan)` for rank counts `1, 2, 4, …` up to the
    /// shard count, scheduling whole shards greedily onto ranks.
    pub curve: Vec<(usize, f64)>,
}

impl EmulatedScaling {
    /// True when the curve mixes simulated cost units with wall-clock
    /// seconds — the two scales are incommensurable, so any speedup read
    /// off such a curve would be bogus.
    pub fn mixed_basis(&self) -> bool {
        let simulated = self.per_shard_basis.contains(&CostBasis::Simulated);
        let wall = self.per_shard_basis.contains(&CostBasis::WallClock);
        simulated && wall
    }

    /// Shards whose cost fell back to wall-clock seconds.
    pub fn wall_clock_shards(&self) -> Vec<usize> {
        self.per_shard_basis
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == CostBasis::WallClock)
            .map(|(s, _)| s)
            .collect()
    }

    /// Emulated speedup of running on `ranks` ranks vs. one rank. None if
    /// `ranks` is not on the curve, the one-rank cost is zero, or the curve
    /// mixes cost bases (see [`EmulatedScaling::mixed_basis`]).
    pub fn speedup(&self, ranks: usize) -> Option<f64> {
        if self.mixed_basis() {
            return None;
        }
        let one = self.curve.iter().find(|&&(r, _)| r == 1)?.1;
        let at = self.curve.iter().find(|&&(r, _)| r == ranks)?.1;
        if at > 0.0 {
            Some(one / at)
        } else {
            None
        }
    }
}

/// Serial cost of one shard run: the simulated account when it tracks one
/// thread, wall clock otherwise — the basis records which.
pub(crate) fn shard_cost(result: &SbpResult) -> (f64, CostBasis) {
    match result.stats.sim_total_time(1) {
        Some(cost) => (cost, CostBasis::Simulated),
        None => (
            result.stats.timer.grand_total().as_secs_f64(),
            CostBasis::WallClock,
        ),
    }
}

/// Build the emulated rank-scaling curve from per-shard costs.
pub(crate) fn scaling_from_costs(
    per_shard_cost: Vec<f64>,
    per_shard_basis: Vec<CostBasis>,
) -> EmulatedScaling {
    let num_shards = per_shard_cost.len().max(1);
    // Shards are independent jobs: a free rank grabs the next one (LPT-ish
    // greedy), which is Dynamic scheduling with chunk size 1.
    let mut rank_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128]
        .into_iter()
        .filter(|&r| r <= num_shards)
        .collect();
    if rank_counts.last() != Some(&num_shards) {
        rank_counts.push(num_shards);
    }
    let curve = rank_counts
        .into_iter()
        .map(|r| {
            (
                r,
                makespan(&per_shard_cost, r, Chunking::Dynamic { chunk_size: 1 }),
            )
        })
        .collect();
    EmulatedScaling {
        per_shard_cost,
        per_shard_basis,
        curve,
    }
}

/// Outer-iteration budget that stops a shard's agglomerative search while
/// it still holds roughly `floor` blocks. With cut fractions near
/// `1 - 1/k`, a shard alone cannot tell its communities apart and would
/// underfit catastrophically if allowed to merge all the way down; instead
/// each shard deliberately *over-partitions* (stops at ~`√n` sub-blocks,
/// Roy & Atchadé's divide-and-conquer recipe) and the stitch phase — which
/// sees every edge — makes the real merge decisions.
fn overpartition_iterations(num_vertices: usize, reduction_rate: f64) -> usize {
    let floor = (num_vertices as f64).sqrt().round().max(4.0);
    if (num_vertices as f64) <= floor {
        return 1;
    }
    let rate = reduction_rate.clamp(0.05, 0.95);
    let steps = ((num_vertices as f64 / floor).ln() / (1.0 / rate).ln()).floor() as usize;
    steps.max(1)
}

/// Run SBP on every shard of `plan` in parallel.
///
/// Each shard gets its own seed (derived from `cfg.sbp.seed` and the shard
/// index), so results are deterministic in `(plan, cfg)` regardless of how
/// the pool schedules the shards. Shards stop their block search early (see
/// [`overpartition_iterations`]); the stitch phase finishes the search
/// globally.
pub fn run_shards(plan: &ShardPlan, cfg: &ShardConfig) -> (Vec<SbpResult>, EmulatedScaling) {
    let jobs: Vec<(usize, SbpConfig)> = (0..plan.num_shards())
        .map(|s| (s, shard_sbp_config(plan, cfg, s, 1)))
        .collect();
    let results: Vec<SbpResult> = hsbp_parallel::global().map_vec(
        jobs,
        || (),
        |(), (s, shard_cfg)| run_sbp(&plan.shards[s].graph, &shard_cfg),
    );

    let (per_shard_cost, per_shard_basis): (Vec<f64>, Vec<CostBasis>) =
        results.iter().map(shard_cost).unzip();
    let scaling = scaling_from_costs(per_shard_cost, per_shard_basis);
    (results, scaling)
}

/// The SBP configuration of one shard attempt. Attempt 1 derives its seed
/// exactly as the unsupervised path always has (`mix(seed, shard)`), so
/// zero-fault supervised runs are bit-identical to [`run_shards`]; retries
/// fold the attempt number in for a fresh, still-deterministic stream.
pub(crate) fn shard_sbp_config(
    plan: &ShardPlan,
    cfg: &ShardConfig,
    shard: usize,
    attempt: usize,
) -> SbpConfig {
    let n = plan.shards[shard].graph.num_vertices();
    let iters = overpartition_iterations(n, cfg.sbp.block_reduction_rate)
        .min(cfg.sbp.max_outer_iterations.max(1));
    let base = mix(cfg.sbp.seed, shard as u64);
    let seed = if attempt <= 1 {
        base
    } else {
        mix(base, attempt as u64)
    };
    SbpConfig {
        seed,
        max_outer_iterations: iters,
        ..cfg.sbp.clone()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::partition::{partition_graph, PartitionStrategy};
    use hsbp_graph::{Graph, Vertex};

    fn two_cliques(size: usize) -> Graph {
        let mut edges = Vec::new();
        for base in [0, size] {
            for a in 0..size {
                for b in 0..size {
                    if a != b {
                        edges.push(((base + a) as Vertex, (base + b) as Vertex));
                    }
                }
            }
        }
        Graph::from_edges(2 * size, &edges)
    }

    #[test]
    fn shard_runs_are_deterministic() {
        let g = two_cliques(8);
        let cfg = ShardConfig {
            num_shards: 2,
            ..Default::default()
        };
        let plan = partition_graph(&g, 2, &PartitionStrategy::RoundRobin);
        let (a, _) = run_shards(&plan, &cfg);
        let (b, _) = run_shards(&plan, &cfg);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.assignment, rb.assignment);
            assert_eq!(ra.num_blocks, rb.num_blocks);
        }
    }

    #[test]
    fn scaling_curve_is_monotone_and_bounded() {
        let g = two_cliques(10);
        let cfg = ShardConfig {
            num_shards: 4,
            ..Default::default()
        };
        let plan = partition_graph(&g, 4, &PartitionStrategy::DegreeBalanced);
        let (results, scaling) = run_shards(&plan, &cfg);
        assert_eq!(results.len(), 4);
        assert_eq!(scaling.per_shard_cost.len(), 4);
        let serial: f64 = scaling.per_shard_cost.iter().sum();
        let max: f64 = scaling.per_shard_cost.iter().copied().fold(0.0, f64::max);
        let mut prev = f64::INFINITY;
        for &(ranks, t) in &scaling.curve {
            assert!(t <= prev + 1e-12, "makespan must not grow with ranks");
            assert!(t <= serial + 1e-9 && t >= max - 1e-9, "ranks={ranks} t={t}");
            prev = t;
        }
        assert_eq!(scaling.curve.first().map(|&(r, _)| r), Some(1));
        assert!(scaling.speedup(1).is_some());
    }

    #[test]
    fn empty_shards_run_fine() {
        let g = two_cliques(3);
        let cfg = ShardConfig {
            num_shards: 8,
            ..Default::default()
        };
        let plan = partition_graph(&g, 8, &PartitionStrategy::RoundRobin);
        let (results, _) = run_shards(&plan, &cfg);
        assert_eq!(results.len(), 8);
        for (shard, result) in plan.shards.iter().zip(&results) {
            assert_eq!(result.assignment.len(), shard.graph.num_vertices());
        }
    }
}
