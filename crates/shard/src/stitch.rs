//! Stitching: reassemble a global blockmodel from per-shard partitions,
//! merge shard-boundary blocks, finetune on the full graph.
//!
//! After the per-shard runs, each global community is split into many
//! sub-blocks (the shards deliberately over-partition — see
//! `runner::overpartition_iterations`). Stitching therefore:
//!
//! 1. offsets each shard's block ids into one disjoint global id space and
//!    builds a full-graph [`Blockmodel`] from the union assignment — the
//!    first time the cut edges enter any model;
//! 2. finishes the agglomerative search *globally*: the same
//!    golden-section bracket over the block count as the single-model
//!    driver, except warm-started from the stitched union instead of the
//!    singleton partition. Each evaluation is a [`merge_phase`] (which
//!    fuses blocks the cut edges reveal to be the same community) followed
//!    by a short full-graph MCMC finetune (H-SBP by default) so boundary
//!    vertices that were sharded away from their community can cross over;
//! 3. returns the best-MDL state the bracket search evaluated.

use crate::ShardConfig;
use hsbp_blockmodel::{mdl, Block, Blockmodel};
use hsbp_core::{merge_phase, run_mcmc_phase, RunStats, SbpConfig, SbpResult};
use hsbp_graph::Graph;

/// What the stitch phase did, for reporting.
#[derive(Debug, Clone)]
pub struct StitchReport {
    /// Global block count right after union (sum of shard block counts).
    pub blocks_stitched: usize,
    /// Block count of the returned best state.
    pub blocks_final: usize,
    /// Merge-then-finetune steps evaluated.
    pub steps: usize,
    /// Total finetune sweeps across all steps.
    pub finetune_sweeps: usize,
    /// MDL of the raw stitched state (before any merge/finetune).
    pub stitched_mdl: f64,
}

/// One evaluated point of the stitch search: a partition at a block count.
#[derive(Debug, Clone)]
struct Evaluated {
    num_blocks: usize,
    mdl_total: f64,
    assignment: Vec<Block>,
}

/// Golden-section interior fraction (same as the driver's).
const GOLDEN: f64 = 0.382;

/// Union the per-shard assignments into one global assignment with
/// disjoint block ids. Returns `(assignment, num_blocks)`.
fn union_assignment(
    plan: &crate::partition::ShardPlan,
    shard_results: &[SbpResult],
) -> (Vec<Block>, usize) {
    let mut offsets = Vec::with_capacity(shard_results.len());
    let mut total_blocks = 0usize;
    for result in shard_results {
        offsets.push(total_blocks as Block);
        total_blocks += result.num_blocks;
    }
    let assignment = plan
        .parts
        .iter()
        .zip(&plan.local_ids)
        .map(|(&shard, &local)| {
            shard_results[shard as usize].assignment[local as usize] + offsets[shard as usize]
        })
        .collect();
    (assignment, total_blocks.max(1))
}

/// Stitch per-shard results into a full-graph [`SbpResult`].
///
/// `shard_results[s]` must be the result of running SBP on
/// `plan.shards[s].graph`; panics on length mismatch.
pub fn stitch(
    graph: &Graph,
    plan: &crate::partition::ShardPlan,
    shard_results: &[SbpResult],
    cfg: &ShardConfig,
) -> (SbpResult, StitchReport) {
    assert_eq!(
        plan.num_shards(),
        shard_results.len(),
        "one result per shard"
    );
    let n = graph.num_vertices();
    let finetune_cfg = SbpConfig {
        variant: cfg.finetune_variant,
        max_sweeps: cfg.finetune_sweeps,
        ..cfg.sbp.clone()
    };
    let mut stats = RunStats::new(&finetune_cfg);
    // Fold the per-shard accounts into the global stats so the final
    // result's simulated/wall timings cover the whole pipeline.
    for result in shard_results {
        stats.timer.merge(&result.stats.timer);
        stats.sim_mcmc.merge(&result.stats.sim_mcmc);
        stats.sim_merge.merge(&result.stats.sim_merge);
        stats.mcmc_sweeps += result.stats.mcmc_sweeps;
        stats.mcmc_phases += result.stats.mcmc_phases;
        stats.outer_iterations += result.stats.outer_iterations;
        stats.proposals += result.stats.proposals;
        stats.accepted += result.stats.accepted;
    }

    if n == 0 {
        let report = StitchReport {
            blocks_stitched: 0,
            blocks_final: 0,
            steps: 0,
            finetune_sweeps: 0,
            stitched_mdl: 0.0,
        };
        let result = SbpResult {
            assignment: Vec::new(),
            num_blocks: 0,
            mdl: mdl::Mdl {
                log_likelihood: 0.0,
                model_complexity: 0.0,
                total: 0.0,
            },
            normalized_mdl: f64::NAN,
            trajectory: Vec::new(),
            stats,
        };
        return (result, report);
    }

    let (assignment, blocks_stitched) = union_assignment(plan, shard_results);
    let mut bm = Blockmodel::from_assignment(graph, assignment, blocks_stitched);
    let stitched_mdl = mdl::mdl(&bm, n, graph.total_weight()).total;

    // Golden-section bracket over the block count, mirroring the driver's
    // bookkeeping: `mid` is the best-MDL state, `upper`/`lower` the tightest
    // worse states on either side. `upper` starts at the stitched union
    // (the driver starts it at the singleton partition instead).
    let mut upper: Option<Evaluated> = Some(Evaluated {
        num_blocks: blocks_stitched,
        mdl_total: stitched_mdl,
        assignment: bm.assignment().to_vec(),
    });
    let mut mid: Option<Evaluated> = None;
    let mut lower: Option<Evaluated> = None;

    let mut trajectory = vec![(blocks_stitched, stitched_mdl)];
    let mut steps = 0usize;
    let mut finetune_sweeps = 0usize;
    let mut phase_index: u64 = u64::MAX / 2; // disjoint from per-shard salts
    loop {
        if steps >= cfg.sbp.max_outer_iterations {
            break;
        }
        let bracketed = mid.is_some() && lower.is_some();
        // Decide the next block-count target and the state to merge from.
        let target = if !bracketed {
            let b = bm.num_blocks();
            if b <= 1 {
                break;
            }
            (((b as f64) * cfg.sbp.block_reduction_rate).round() as usize).clamp(1, b - 1)
        } else {
            let (u, m, l) = (
                upper.as_ref().expect("upper always set"),
                mid.as_ref().unwrap(),
                lower.as_ref().unwrap(),
            );
            if u.num_blocks.saturating_sub(l.num_blocks) <= 2 {
                break; // no interior candidate besides mid
            }
            let gap_hi = u.num_blocks - m.num_blocks;
            let gap_lo = m.num_blocks - l.num_blocks;
            if gap_hi >= gap_lo && gap_hi >= 2 {
                let t = m.num_blocks + ((gap_hi as f64) * GOLDEN).round() as usize;
                let t = t.clamp(m.num_blocks + 1, u.num_blocks - 1);
                let source = u.clone();
                bm = Blockmodel::from_assignment(graph, source.assignment, source.num_blocks);
                t
            } else if gap_lo >= 2 {
                let t = m.num_blocks - ((gap_lo as f64) * GOLDEN).round() as usize;
                let t = t.clamp(l.num_blocks + 1, m.num_blocks - 1);
                let source = m.clone();
                bm = Blockmodel::from_assignment(graph, source.assignment, source.num_blocks);
                t
            } else {
                break;
            }
        };

        merge_phase(
            graph,
            &mut bm,
            target,
            &finetune_cfg,
            phase_index,
            &mut stats,
        );
        let outcome = run_mcmc_phase(graph, &mut bm, &finetune_cfg, phase_index, &mut stats);
        phase_index += 1;
        steps += 1;
        finetune_sweeps += outcome.sweeps;

        let evaluated = Evaluated {
            num_blocks: bm.num_blocks(),
            mdl_total: outcome.mdl.total,
            assignment: bm.assignment().to_vec(),
        };
        trajectory.push((evaluated.num_blocks, evaluated.mdl_total));

        // Bracket update (identical to the driver's).
        match &mid {
            None => mid = Some(evaluated),
            Some(m) if evaluated.mdl_total < m.mdl_total => {
                let displaced = mid.take().unwrap();
                if evaluated.num_blocks < displaced.num_blocks {
                    if displaced.num_blocks < upper.as_ref().map_or(usize::MAX, |u| u.num_blocks) {
                        upper = Some(displaced);
                    }
                } else if displaced.num_blocks > lower.as_ref().map_or(0, |l| l.num_blocks) {
                    lower = Some(displaced);
                }
                mid = Some(evaluated);
            }
            Some(m) => {
                if evaluated.num_blocks < m.num_blocks {
                    if lower
                        .as_ref()
                        .is_none_or(|l| evaluated.num_blocks > l.num_blocks)
                    {
                        lower = Some(evaluated);
                    }
                } else if evaluated.num_blocks > m.num_blocks
                    && upper
                        .as_ref()
                        .is_none_or(|u| evaluated.num_blocks < u.num_blocks)
                {
                    upper = Some(evaluated);
                }
            }
        }

        if !(mid.is_some() && lower.is_some()) && bm.num_blocks() <= 1 {
            break;
        }
    }

    let best = mid.or(upper).expect("at least the stitched union exists");
    let best_bm = Blockmodel::from_assignment(graph, best.assignment.clone(), best.num_blocks);
    let final_mdl = mdl::mdl(&best_bm, n, graph.total_weight());
    let null = mdl::null_mdl(graph.total_weight());
    let result = SbpResult {
        assignment: best.assignment,
        num_blocks: best.num_blocks,
        mdl: final_mdl,
        normalized_mdl: if null == 0.0 {
            f64::NAN
        } else {
            final_mdl.total / null
        },
        trajectory,
        stats,
    };
    let report = StitchReport {
        blocks_stitched,
        blocks_final: result.num_blocks,
        steps,
        finetune_sweeps,
        stitched_mdl,
    };
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_graph, PartitionStrategy};
    use crate::runner::run_shards;
    use hsbp_graph::Vertex;

    /// `c` cliques of `size` vertices, one weak bridge edge between
    /// consecutive cliques so the graph is connected.
    fn cliques(c: usize, size: usize) -> Graph {
        let mut edges = Vec::new();
        for k in 0..c {
            let base = k * size;
            for a in 0..size {
                for b in 0..size {
                    if a != b {
                        edges.push(((base + a) as Vertex, (base + b) as Vertex));
                    }
                }
            }
            if k + 1 < c {
                edges.push(((base) as Vertex, (base + size) as Vertex));
            }
        }
        Graph::from_edges(c * size, &edges)
    }

    #[test]
    fn stitch_recovers_cliques_split_across_shards() {
        // Round-robin sharding slices every clique across both shards; only
        // the stitch phase can reunite them.
        let g = cliques(3, 8);
        let cfg = ShardConfig {
            num_shards: 2,
            ..Default::default()
        };
        let plan = partition_graph(&g, 2, &PartitionStrategy::RoundRobin);
        let (shard_results, _) = run_shards(&plan, &cfg);
        let (result, report) = stitch(&g, &plan, &shard_results, &cfg);
        assert_eq!(result.assignment.len(), 24);
        assert!(report.blocks_stitched >= result.num_blocks);
        // All members of a clique end in one block.
        for k in 0..3 {
            let b = result.assignment[k * 8];
            for v in 0..8 {
                assert_eq!(result.assignment[k * 8 + v], b, "clique {k} split");
            }
        }
        // MDL must improve on the raw union.
        assert!(result.mdl.total <= report.stitched_mdl + 1e-9);
    }

    #[test]
    fn stitch_handles_single_shard() {
        let g = cliques(2, 6);
        let cfg = ShardConfig {
            num_shards: 1,
            ..Default::default()
        };
        let plan = partition_graph(&g, 1, &PartitionStrategy::RoundRobin);
        let (shard_results, _) = run_shards(&plan, &cfg);
        let (result, _) = stitch(&g, &plan, &shard_results, &cfg);
        assert_eq!(result.assignment.len(), 12);
        assert!(result.num_blocks >= 1);
        assert!(result.mdl.total.is_finite());
    }
}
