//! Stitching: reassemble a global blockmodel from per-shard partitions,
//! merge shard-boundary blocks, finetune on the full graph.
//!
//! After the per-shard runs, each global community is split into many
//! sub-blocks (the shards deliberately over-partition — see
//! `runner::overpartition_iterations`). Stitching therefore:
//!
//! 1. offsets each shard's block ids into one disjoint global id space and
//!    builds a full-graph [`Blockmodel`] from the union assignment — the
//!    first time the cut edges enter any model;
//! 2. finishes the agglomerative search *globally*: the same
//!    golden-section bracket over the block count as the single-model
//!    driver, except warm-started from the stitched union instead of the
//!    singleton partition. Each evaluation is a [`merge_phase`] (which
//!    fuses blocks the cut edges reveal to be the same community) followed
//!    by a short full-graph MCMC finetune (H-SBP by default) so boundary
//!    vertices that were sharded away from their community can cross over;
//! 3. returns the best-MDL state the bracket search evaluated.
//!
//! Under supervision ([`stitch_supervised`]) a shard may have been dropped.
//! The union then covers surviving shards only, and the dropped shards'
//! vertices are reassigned by **majority vote over their cut edges**:
//! repeated passes give every orphaned vertex the block that the plurality
//! of its already-assigned neighbours (weighted, both edge directions)
//! belong to. Vertices unreachable from any survivor fall back to the
//! largest surviving block. The finetune sweeps that follow see the full
//! edge set and polish these guessed memberships like any other boundary
//! vertex.

use crate::ShardConfig;
use hsbp_blockmodel::{mdl, Block, Blockmodel};
use hsbp_core::{merge_phase, run_mcmc_phase, HsbpError, RunStats, SbpConfig, SbpResult};
use hsbp_graph::Graph;
use std::collections::HashMap;

/// What the stitch phase did, for reporting.
#[derive(Debug, Clone)]
pub struct StitchReport {
    /// Global block count right after union (sum of shard block counts).
    pub blocks_stitched: usize,
    /// Block count of the returned best state.
    pub blocks_final: usize,
    /// Merge-then-finetune steps evaluated.
    pub steps: usize,
    /// Total finetune sweeps across all steps.
    pub finetune_sweeps: usize,
    /// MDL of the raw stitched state (before any merge/finetune).
    pub stitched_mdl: f64,
    /// Vertices of dropped shards reassigned by majority vote (0 on
    /// non-degraded runs).
    pub reassigned_vertices: usize,
}

/// One evaluated point of the stitch search: a partition at a block count.
#[derive(Debug, Clone)]
struct Evaluated {
    num_blocks: usize,
    mdl_total: f64,
    assignment: Vec<Block>,
}

/// Golden-section interior fraction (same as the driver's).
const GOLDEN: f64 = 0.382;

/// Union the per-shard assignments into one global assignment with
/// disjoint block ids. Returns `(assignment, num_blocks)`.
fn union_assignment(
    plan: &crate::partition::ShardPlan,
    shard_results: &[&SbpResult],
) -> (Vec<Block>, usize) {
    let mut offsets = Vec::with_capacity(shard_results.len());
    let mut total_blocks = 0usize;
    for result in shard_results {
        offsets.push(total_blocks as Block);
        total_blocks += result.num_blocks;
    }
    let assignment = plan
        .parts
        .iter()
        .zip(&plan.local_ids)
        .map(|(&shard, &local)| {
            shard_results[shard as usize].assignment[local as usize] + offsets[shard as usize]
        })
        .collect();
    (assignment, total_blocks.max(1))
}

/// Union over *surviving* shards only: dropped shards' vertices come back
/// as `None`. Returns `(partial assignment, num surviving blocks)`.
fn union_surviving(
    plan: &crate::partition::ShardPlan,
    results: &[Option<SbpResult>],
) -> (Vec<Option<Block>>, usize) {
    let mut offsets = vec![0 as Block; results.len()];
    let mut total_blocks = 0usize;
    for (shard, result) in results.iter().enumerate() {
        if let Some(r) = result {
            offsets[shard] = total_blocks as Block;
            total_blocks += r.num_blocks;
        }
    }
    let assignment = plan
        .parts
        .iter()
        .zip(&plan.local_ids)
        .map(|(&shard, &local)| {
            results[shard as usize]
                .as_ref()
                .map(|r| r.assignment[local as usize] + offsets[shard as usize])
        })
        .collect();
    (assignment, total_blocks)
}

/// Fill every `None` slot by weighted majority vote over assigned
/// neighbours (both edge directions). Runs passes until a fixpoint so
/// orphaned regions flood-fill inward from the cut; anything still
/// unassigned (no path to a survivor) falls back to the largest surviving
/// block. Deterministic: vertices are visited in ascending order against a
/// per-pass snapshot, ties break toward the lowest block id.
///
/// Returns the number of vertices reassigned.
pub(crate) fn reassign_dropped(
    graph: &Graph,
    assigned: &mut [Option<Block>],
    num_blocks: usize,
) -> usize {
    let n = assigned.len();
    let orphaned: Vec<usize> = (0..n).filter(|&v| assigned[v].is_none()).collect();
    if orphaned.is_empty() {
        return 0;
    }
    loop {
        let snapshot: Vec<Option<Block>> = assigned.to_vec();
        let mut progress = false;
        for &v in &orphaned {
            if assigned[v].is_some() {
                continue;
            }
            let mut votes: HashMap<Block, u64> = HashMap::new();
            for (u, w) in graph.out_edges(v as u32) {
                if let Some(b) = snapshot[u as usize] {
                    *votes.entry(b).or_insert(0) += w;
                }
            }
            for (u, w) in graph.in_edges(v as u32) {
                if let Some(b) = snapshot[u as usize] {
                    *votes.entry(b).or_insert(0) += w;
                }
            }
            // Plurality by weight, lowest block id on ties.
            let winner = votes
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
            if let Some((block, _)) = winner {
                assigned[v] = Some(block);
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    // Isolated remainder: largest surviving block (ties toward lowest id).
    let mut sizes = vec![0usize; num_blocks];
    for b in assigned.iter().flatten() {
        if (*b as usize) < num_blocks {
            sizes[*b as usize] += 1;
        }
    }
    let fallback = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(b, _)| b as Block)
        .unwrap_or(0);
    for slot in assigned.iter_mut() {
        if slot.is_none() {
            *slot = Some(fallback);
        }
    }
    orphaned.len()
}

/// Fold the per-shard instrumentation accounts into the global stats so the
/// final result's simulated/wall timings cover the whole pipeline.
fn fold_stats<'a>(stats: &mut RunStats, results: impl Iterator<Item = &'a SbpResult>) {
    for result in results {
        stats.timer.merge(&result.stats.timer);
        stats.sim_mcmc.merge(&result.stats.sim_mcmc);
        stats.sim_merge.merge(&result.stats.sim_merge);
        stats.mcmc_sweeps += result.stats.mcmc_sweeps;
        stats.mcmc_phases += result.stats.mcmc_phases;
        stats.outer_iterations += result.stats.outer_iterations;
        stats.proposals += result.stats.proposals;
        stats.accepted += result.stats.accepted;
        stats.audits_run += result.stats.audits_run;
        stats
            .drift_events
            .extend(result.stats.drift_events.iter().cloned());
        stats.consolidations_incremental += result.stats.consolidations_incremental;
        stats.consolidations_rebuild += result.stats.consolidations_rebuild;
        stats.consolidated_moves += result.stats.consolidated_moves;
        stats.sync_rounds += result.stats.sync_rounds;
        stats.sync_retransmits += result.stats.sync_retransmits;
        stats.sync_resyncs += result.stats.sync_resyncs;
        stats.sync_bytes += result.stats.sync_bytes;
    }
}

/// Stitch per-shard results into a full-graph [`SbpResult`].
///
/// `shard_results[s]` must be the result of running SBP on
/// `plan.shards[s].graph`; panics on length mismatch.
pub fn stitch(
    graph: &Graph,
    plan: &crate::partition::ShardPlan,
    shard_results: &[SbpResult],
    cfg: &ShardConfig,
) -> (SbpResult, StitchReport) {
    assert_eq!(
        plan.num_shards(),
        shard_results.len(),
        "one result per shard"
    );
    let finetune_cfg = finetune_config(cfg);
    let mut stats = RunStats::new(&finetune_cfg);
    fold_stats(&mut stats, shard_results.iter());
    if graph.num_vertices() == 0 {
        return empty_stitch(stats);
    }
    let refs: Vec<&SbpResult> = shard_results.iter().collect();
    let (assignment, blocks_stitched) = union_assignment(plan, &refs);
    stitch_core(graph, assignment, blocks_stitched, 0, stats, cfg)
}

/// Stitch the (possibly gappy) results of a supervised run. Dropped shards
/// (`None` entries) trigger graceful degradation: their vertices are
/// majority-voted onto surviving shards' blocks before the merge/finetune
/// search (see module docs). With every shard present this is exactly
/// [`stitch`] — bit for bit.
pub fn stitch_supervised(
    graph: &Graph,
    plan: &crate::partition::ShardPlan,
    results: &[Option<SbpResult>],
    cfg: &ShardConfig,
) -> Result<(SbpResult, StitchReport), HsbpError> {
    assert_eq!(plan.num_shards(), results.len(), "one slot per shard");
    let finetune_cfg = finetune_config(cfg);
    let mut stats = RunStats::new(&finetune_cfg);
    fold_stats(&mut stats, results.iter().flatten());
    if graph.num_vertices() == 0 {
        return Ok(empty_stitch(stats));
    }
    if results.iter().all(Option::is_none) {
        return Err(HsbpError::AllShardsFailed {
            num_shards: results.len(),
        });
    }

    let (assignment, blocks_stitched, reassigned) = if results.iter().all(Option::is_some) {
        // Reuse the exact non-degraded union so zero-fault runs stay
        // bit-identical to the unsupervised path.
        let full: Vec<&SbpResult> = results.iter().flatten().collect();
        let (a, b) = union_assignment(plan, &full);
        (a, b, 0)
    } else {
        let (partial, surviving_blocks) = union_surviving(plan, results);
        let mut partial = partial;
        if surviving_blocks == 0 {
            // Survivors exist but hold zero blocks (all empty shards):
            // nothing to vote onto.
            return Err(HsbpError::AllShardsFailed {
                num_shards: results.len(),
            });
        }
        let reassigned = reassign_dropped(graph, &mut partial, surviving_blocks);
        let assignment: Vec<Block> = partial.into_iter().map(|b| b.unwrap_or(0)).collect();
        (assignment, surviving_blocks.max(1), reassigned)
    };
    Ok(stitch_core(
        graph,
        assignment,
        blocks_stitched,
        reassigned,
        stats,
        cfg,
    ))
}

fn finetune_config(cfg: &ShardConfig) -> SbpConfig {
    SbpConfig {
        variant: cfg.finetune_variant,
        max_sweeps: cfg.finetune_sweeps,
        ..cfg.sbp.clone()
    }
}

fn empty_stitch(stats: RunStats) -> (SbpResult, StitchReport) {
    let report = StitchReport {
        blocks_stitched: 0,
        blocks_final: 0,
        steps: 0,
        finetune_sweeps: 0,
        stitched_mdl: 0.0,
        reassigned_vertices: 0,
    };
    let result = SbpResult {
        assignment: Vec::new(),
        num_blocks: 0,
        mdl: mdl::Mdl {
            log_likelihood: 0.0,
            model_complexity: 0.0,
            total: 0.0,
        },
        normalized_mdl: f64::NAN,
        trajectory: Vec::new(),
        stats,
    };
    (result, report)
}

/// The global merge/finetune search over a stitched union assignment.
fn stitch_core(
    graph: &Graph,
    assignment: Vec<Block>,
    blocks_stitched: usize,
    reassigned_vertices: usize,
    mut stats: RunStats,
    cfg: &ShardConfig,
) -> (SbpResult, StitchReport) {
    let n = graph.num_vertices();
    let finetune_cfg = finetune_config(cfg);
    let mut bm = Blockmodel::from_assignment(graph, assignment, blocks_stitched);
    let stitched_mdl = mdl::mdl(&bm, n, graph.total_weight()).total;

    // Golden-section bracket over the block count, mirroring the driver's
    // bookkeeping: `mid` is the best-MDL state, `upper`/`lower` the tightest
    // worse states on either side. `upper` starts at the stitched union
    // (the driver starts it at the singleton partition instead).
    let mut upper: Option<Evaluated> = Some(Evaluated {
        num_blocks: blocks_stitched,
        mdl_total: stitched_mdl,
        assignment: bm.assignment().to_vec(),
    });
    let mut mid: Option<Evaluated> = None;
    let mut lower: Option<Evaluated> = None;

    let mut trajectory = vec![(blocks_stitched, stitched_mdl)];
    let mut steps = 0usize;
    let mut finetune_sweeps = 0usize;
    let mut phase_index: u64 = u64::MAX / 2; // disjoint from per-shard salts
    loop {
        if steps >= cfg.sbp.max_outer_iterations {
            break;
        }
        // Decide the next block-count target and the state to merge from.
        let target = match (&upper, &mid, &lower) {
            (Some(u), Some(m), Some(l)) => {
                if u.num_blocks.saturating_sub(l.num_blocks) <= 2 {
                    break; // no interior candidate besides mid
                }
                let gap_hi = u.num_blocks - m.num_blocks;
                let gap_lo = m.num_blocks - l.num_blocks;
                if gap_hi >= gap_lo && gap_hi >= 2 {
                    let t = m.num_blocks + ((gap_hi as f64) * GOLDEN).round() as usize;
                    let t = t.clamp(m.num_blocks + 1, u.num_blocks - 1);
                    let source = u.clone();
                    bm = Blockmodel::from_assignment(graph, source.assignment, source.num_blocks);
                    t
                } else if gap_lo >= 2 {
                    let t = m.num_blocks - ((gap_lo as f64) * GOLDEN).round() as usize;
                    let t = t.clamp(l.num_blocks + 1, m.num_blocks - 1);
                    let source = m.clone();
                    bm = Blockmodel::from_assignment(graph, source.assignment, source.num_blocks);
                    t
                } else {
                    break;
                }
            }
            _ => {
                let b = bm.num_blocks();
                if b <= 1 {
                    break;
                }
                (((b as f64) * cfg.sbp.block_reduction_rate).round() as usize).clamp(1, b - 1)
            }
        };

        merge_phase(
            graph,
            &mut bm,
            target,
            &finetune_cfg,
            phase_index,
            &mut stats,
        );
        let outcome = run_mcmc_phase(graph, &mut bm, &finetune_cfg, phase_index, &mut stats);
        phase_index += 1;
        steps += 1;
        finetune_sweeps += outcome.sweeps;

        let evaluated = Evaluated {
            num_blocks: bm.num_blocks(),
            mdl_total: outcome.mdl.total,
            assignment: bm.assignment().to_vec(),
        };
        trajectory.push((evaluated.num_blocks, evaluated.mdl_total));

        // Bracket update (identical to the driver's).
        match &mid {
            None => mid = Some(evaluated),
            Some(m) if evaluated.mdl_total < m.mdl_total => {
                if let Some(displaced) = mid.take() {
                    if evaluated.num_blocks < displaced.num_blocks {
                        if displaced.num_blocks
                            < upper.as_ref().map_or(usize::MAX, |u| u.num_blocks)
                        {
                            upper = Some(displaced);
                        }
                    } else if displaced.num_blocks > lower.as_ref().map_or(0, |l| l.num_blocks) {
                        lower = Some(displaced);
                    }
                }
                mid = Some(evaluated);
            }
            Some(m) => {
                if evaluated.num_blocks < m.num_blocks {
                    if lower
                        .as_ref()
                        .is_none_or(|l| evaluated.num_blocks > l.num_blocks)
                    {
                        lower = Some(evaluated);
                    }
                } else if evaluated.num_blocks > m.num_blocks
                    && upper
                        .as_ref()
                        .is_none_or(|u| evaluated.num_blocks < u.num_blocks)
                {
                    upper = Some(evaluated);
                }
            }
        }

        if !(mid.is_some() && lower.is_some()) && bm.num_blocks() <= 1 {
            break;
        }
    }

    let best = match mid.or(upper) {
        Some(best) => best,
        // `upper` is seeded with the stitched union and never cleared.
        None => unreachable!("the stitched union is always recorded"),
    };
    let best_bm = Blockmodel::from_assignment(graph, best.assignment.clone(), best.num_blocks);
    let final_mdl = mdl::mdl(&best_bm, n, graph.total_weight());
    let null = mdl::null_mdl(graph.total_weight());
    let result = SbpResult {
        assignment: best.assignment,
        num_blocks: best.num_blocks,
        mdl: final_mdl,
        normalized_mdl: if null == 0.0 {
            f64::NAN
        } else {
            final_mdl.total / null
        },
        trajectory,
        stats,
    };
    let report = StitchReport {
        blocks_stitched,
        blocks_final: result.num_blocks,
        steps,
        finetune_sweeps,
        stitched_mdl,
        reassigned_vertices,
    };
    (result, report)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::partition::{partition_graph, PartitionStrategy};
    use crate::runner::run_shards;
    use hsbp_graph::Vertex;

    /// `c` cliques of `size` vertices, one weak bridge edge between
    /// consecutive cliques so the graph is connected.
    fn cliques(c: usize, size: usize) -> Graph {
        let mut edges = Vec::new();
        for k in 0..c {
            let base = k * size;
            for a in 0..size {
                for b in 0..size {
                    if a != b {
                        edges.push(((base + a) as Vertex, (base + b) as Vertex));
                    }
                }
            }
            if k + 1 < c {
                edges.push(((base) as Vertex, (base + size) as Vertex));
            }
        }
        Graph::from_edges(c * size, &edges)
    }

    #[test]
    fn stitch_recovers_cliques_split_across_shards() {
        // Round-robin sharding slices every clique across both shards; only
        // the stitch phase can reunite them.
        let g = cliques(3, 8);
        let cfg = ShardConfig {
            num_shards: 2,
            ..Default::default()
        };
        let plan = partition_graph(&g, 2, &PartitionStrategy::RoundRobin);
        let (shard_results, _) = run_shards(&plan, &cfg);
        let (result, report) = stitch(&g, &plan, &shard_results, &cfg);
        assert_eq!(result.assignment.len(), 24);
        assert!(report.blocks_stitched >= result.num_blocks);
        // All members of a clique end in one block.
        for k in 0..3 {
            let b = result.assignment[k * 8];
            for v in 0..8 {
                assert_eq!(result.assignment[k * 8 + v], b, "clique {k} split");
            }
        }
        // MDL must improve on the raw union.
        assert!(result.mdl.total <= report.stitched_mdl + 1e-9);
    }

    #[test]
    fn stitch_handles_single_shard() {
        let g = cliques(2, 6);
        let cfg = ShardConfig {
            num_shards: 1,
            ..Default::default()
        };
        let plan = partition_graph(&g, 1, &PartitionStrategy::RoundRobin);
        let (shard_results, _) = run_shards(&plan, &cfg);
        let (result, _) = stitch(&g, &plan, &shard_results, &cfg);
        assert_eq!(result.assignment.len(), 12);
        assert!(result.num_blocks >= 1);
        assert!(result.mdl.total.is_finite());
    }

    #[test]
    fn supervised_stitch_with_all_results_matches_plain_stitch() {
        let g = cliques(3, 6);
        let cfg = ShardConfig {
            num_shards: 3,
            ..Default::default()
        };
        let plan = partition_graph(&g, 3, &PartitionStrategy::RoundRobin);
        let (shard_results, _) = run_shards(&plan, &cfg);
        let (plain, plain_report) = stitch(&g, &plan, &shard_results, &cfg);
        let slots: Vec<Option<SbpResult>> = shard_results.into_iter().map(Some).collect();
        let (sup, sup_report) = stitch_supervised(&g, &plan, &slots, &cfg).unwrap();
        assert_eq!(plain.assignment, sup.assignment);
        assert_eq!(plain.num_blocks, sup.num_blocks);
        assert_eq!(plain.mdl.total, sup.mdl.total);
        assert_eq!(plain_report.blocks_stitched, sup_report.blocks_stitched);
        assert_eq!(sup_report.reassigned_vertices, 0);
    }

    #[test]
    fn degraded_stitch_reassigns_dropped_shard_vertices() {
        let g = cliques(3, 8);
        let cfg = ShardConfig {
            num_shards: 3,
            ..Default::default()
        };
        let plan = partition_graph(&g, 3, &PartitionStrategy::RoundRobin);
        let (shard_results, _) = run_shards(&plan, &cfg);
        let dropped = plan.shards[1].graph.num_vertices();
        let mut slots: Vec<Option<SbpResult>> = shard_results.into_iter().map(Some).collect();
        slots[1] = None;
        let (result, report) = stitch_supervised(&g, &plan, &slots, &cfg).unwrap();
        assert_eq!(report.reassigned_vertices, dropped);
        assert_eq!(result.assignment.len(), 24);
        // Every clique still ends whole: the finetune sweeps see all edges.
        for k in 0..3 {
            let b = result.assignment[k * 8];
            for v in 0..8 {
                assert_eq!(result.assignment[k * 8 + v], b, "clique {k} split");
            }
        }
    }

    #[test]
    fn all_none_slots_error() {
        let g = cliques(2, 4);
        let cfg = ShardConfig {
            num_shards: 2,
            ..Default::default()
        };
        let plan = partition_graph(&g, 2, &PartitionStrategy::RoundRobin);
        let slots: Vec<Option<SbpResult>> = vec![None, None];
        assert!(matches!(
            stitch_supervised(&g, &plan, &slots, &cfg),
            Err(HsbpError::AllShardsFailed { num_shards: 2 })
        ));
    }

    #[test]
    fn majority_vote_is_weight_aware_and_deterministic() {
        // Path 0-1-2 where 1 is orphaned; edge (1,2) carries more weight
        // than (0,1), so vertex 1 must join 2's block.
        let edges: Vec<(Vertex, Vertex)> = vec![(0, 1), (1, 2), (1, 2)];
        let g = Graph::from_edges(3, &edges);
        let mut assigned = vec![Some(0), None, Some(1)];
        let moved = reassign_dropped(&g, &mut assigned, 2);
        assert_eq!(moved, 1);
        assert_eq!(assigned[1], Some(1));
    }
}
