//! Exact distributed SBP over a replicated global blockmodel.
//!
//! Unlike the divide-and-conquer pipeline (partition → blind per-shard SBP
//! → stitch), the exact mode follows Wanye et al.'s *Exact Distributed
//! Stochastic Block Partitioning*: every shard owns a contiguous **vertex
//! range** of the full graph but evaluates proposals against a **full
//! replica of the global blockmodel**, so no edge is ever invisible and no
//! over-partition factor is needed. After every `sync_every` local sweeps
//! the shards exchange their accepted moves as sequence-numbered,
//! checksummed delta messages (the EA-SBP replica-pool sync of PR 4, lifted
//! one level up onto an emulated wire), and every replica folds in the
//! foreign moves as exact integer deltas — with `sync_every = 1` the run is
//! **bit-identical** to single-model EA-SBP with `num_shards` workers.
//!
//! The wire is hostile ([`crate::channel`]): messages can be dropped,
//! duplicated, reordered, corrupted or delayed by a deterministic
//! [`NetFaultPlan`]. The protocol survives it with a bulk-synchronous
//! recovery barrier per sync round:
//!
//! 1. every shard broadcasts its round delta under a per-shard sequence
//!    number; receivers detect gaps from the sequence stream,
//! 2. missing deltas are NACKed and retransmitted under a bounded retry
//!    budget (each retransmission re-rolls its fate),
//! 3. a receiver that exhausts its retries against a *live* sender is
//!    brought back with a full-state resync from the coordinator (the
//!    consolidated model — PR 3's repair path, one level up),
//! 4. a sender that produced nothing at all (silent straggler) is declared
//!    **dead**: its vertices are re-voted by the PR 2 majority-vote
//!    machinery, ownership of its range is redistributed over the
//!    survivors, and the run continues degraded instead of aborting.
//!
//! Periodic replica-digest exchange ([`blockmodel_digest`]) additionally
//! catches silent replica divergence (e.g. memory corruption, exercised by
//! the `desync` fault) and heals it with the same coordinator resync.
//!
//! Because recovery completes inside the round barrier, every replica
//! re-enters the next sweep in the consolidated state: drop / duplicate /
//! reorder / corrupt / delay plans change the wire traffic (visible in
//! [`RunStats`]'s `sync_*` counters and the per-round byte log) but **not
//! the sampled chain** — the CI fault matrix asserts final labels are
//! identical to the fault-free run. Only a dead shard changes the
//! trajectory, and that is reported as degradation.

use crate::channel::{
    blockmodel_digest, decode_msg, encode_msg, EmulatedNet, NetFaultPlan, NetTotals, Offer,
    PeerTracker, SyncPayload, HEADER_LEN,
};
use crate::stitch::reassign_dropped;
use hsbp_blockmodel::{
    audit_blockmodel, evaluate_move_with_mode, mdl, propose::accept_move, propose_block,
    repair_blockmodel, Block, Blockmodel, NeighborCounts, ProposalArena,
};
use hsbp_collections::sample::mix_words;
use hsbp_collections::SplitMix64;
use hsbp_core::{
    merge_phase_controlled, DriftEvent, HsbpError, McmcOutcome, RunControl, RunStats, SbpConfig,
    SbpResult,
};
use hsbp_graph::{Graph, Vertex};
use hsbp_parallel::{pool_for, with_resident, ThreadPool};
use hsbp_timing::Phase;

/// Configuration of the exact distributed mode.
#[derive(Debug, Clone)]
pub struct ExactConfig {
    /// Number of shards (vertex-range owners with full model replicas).
    pub num_shards: usize,
    /// The SBP configuration (seed, cost model, audit cadence, …). The
    /// MCMC variant field is ignored: the exact mode *is* the distributed
    /// EA-SBP sweep.
    pub sbp: SbpConfig,
    /// Local sweeps per sync round. `1` reproduces single-model EA-SBP
    /// bit-for-bit; larger values trade staleness for fewer, fatter
    /// messages (the communication-vs-computation knob).
    pub sync_every: usize,
    /// Exchange replica digests every this many sync rounds (`0` disables
    /// divergence detection).
    pub digest_every: usize,
    /// NACK-driven retransmit attempts per missing delta before falling
    /// back to a coordinator resync (live sender) or declaring the sender
    /// dead (silent sender).
    pub max_retries: usize,
    /// Deterministic network fault plan for the emulated wire.
    pub net_faults: NetFaultPlan,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            sbp: SbpConfig::default(),
            sync_every: 1,
            digest_every: 8,
            max_retries: 5,
            net_faults: NetFaultPlan::none(),
        }
    }
}

impl ExactConfig {
    /// Validate the configuration, mirroring [`SbpConfig::validate`].
    pub fn validate(&self) -> Result<(), String> {
        self.sbp.validate()?;
        if self.num_shards == 0 {
            return Err("num_shards must be at least 1".into());
        }
        if self.sync_every == 0 {
            return Err("sync_every must be at least 1".into());
        }
        Ok(())
    }
}

/// Wire activity of one sync round.
#[derive(Debug, Clone)]
pub struct RoundNet {
    /// Global round index (monotonic across phases).
    pub round: u64,
    /// Messages put on the wire during this round.
    pub messages: u64,
    /// Bytes put on the wire during this round.
    pub bytes: u64,
    /// Retransmissions performed during this round.
    pub retransmits: u64,
    /// Full-state resyncs performed during this round.
    pub resyncs: u64,
}

/// One shard declared dead by the sync protocol.
#[derive(Debug, Clone)]
pub struct DeadShard {
    /// The shard.
    pub shard: usize,
    /// Round at which its retry budget was exhausted.
    pub round: u64,
    /// Vertices of its range re-voted by the majority-vote machinery.
    pub reassigned_vertices: usize,
}

/// Result of an exact distributed run.
#[derive(Debug, Clone)]
pub struct ExactRun {
    /// The final partition, with `sync_*` protocol counters in
    /// [`RunStats`].
    pub result: SbpResult,
    /// Per-round wire log (bytes per sync round, retransmits, resyncs).
    pub rounds: Vec<RoundNet>,
    /// Aggregate wire counters.
    pub net: NetTotals,
    /// Shards declared dead, in death order.
    pub dead_shards: Vec<DeadShard>,
    /// Shards the run started with.
    pub num_shards: usize,
}

impl ExactRun {
    /// True when at least one shard died and the run degraded.
    pub fn degraded(&self) -> bool {
        !self.dead_shards.is_empty()
    }
}

/// Framed size of a full-state resync for an `n`-vertex model.
fn resync_frame_len(n: usize) -> usize {
    HEADER_LEN + 1 + 4 + 4 + 4 * n
}

/// Framed size of a digest message.
fn digest_frame_len() -> usize {
    HEADER_LEN + 1 + 4 + 8
}

/// Framed size of a NACK message.
fn nack_frame_len() -> usize {
    HEADER_LEN + 1 + 4 + 4 + 8
}

/// A delta that arrived ahead of a gap, buffered until the gap closes:
/// `(sender, sequence number, move list)`.
type PendingDelta = (usize, u64, Vec<(Vertex, Block)>);

/// The distributed cluster: shard ownership, replicas, sequence state and
/// the emulated wire. Lives across the phases of one run.
struct Cluster<'a> {
    cfg: &'a ExactConfig,
    /// Owned vertices per shard, ascending. Grows when a dead shard's
    /// range is redistributed.
    owned: Vec<Vec<Vertex>>,
    alive: Vec<bool>,
    /// Full-model replica per live shard (`None` = dead or needs reseed).
    replicas: Vec<Option<Blockmodel>>,
    net: EmulatedNet,
    /// Next sequence number per sender.
    next_seq: Vec<u64>,
    /// `trackers[receiver][sender]`: in-order delivery state.
    trackers: Vec<Vec<PeerTracker>>,
    round: u64,
    rounds_log: Vec<RoundNet>,
    dead_log: Vec<DeadShard>,
}

impl<'a> Cluster<'a> {
    fn new(graph: &Graph, cfg: &'a ExactConfig) -> Self {
        let n = graph.num_vertices();
        let k = cfg.num_shards.clamp(1, n.max(1));
        // Contiguous ranges, identical to EA-SBP's worker shards: shard w
        // owns [w·ceil(n/k), (w+1)·ceil(n/k)) clamped to n.
        let shard_len = n.div_ceil(k);
        let owned: Vec<Vec<Vertex>> = (0..k)
            .map(|w| {
                let start = (w * shard_len).min(n);
                let end = ((w + 1) * shard_len).min(n);
                (start as Vertex..end as Vertex).collect()
            })
            .collect();
        Self {
            cfg,
            owned,
            alive: vec![true; k],
            replicas: vec![None; k],
            net: EmulatedNet::new(k, cfg.net_faults.clone(), cfg.sbp.cost_model),
            next_seq: vec![0; k],
            trackers: vec![vec![PeerTracker::default(); k]; k],
            round: 0,
            rounds_log: Vec::new(),
            dead_log: Vec::new(),
        }
    }

    fn num_shards(&self) -> usize {
        self.owned.len()
    }

    fn live_shards(&self) -> Vec<usize> {
        (0..self.num_shards()).filter(|&s| self.alive[s]).collect()
    }

    /// Reseed every live replica from the coordinator (phase start — the
    /// merge phase reshaped the model behind the shards' backs). Pays the
    /// EA-SBP replication cost and the full-state broadcast bytes.
    fn reseed(&mut self, graph: &Graph, coordinator: &Blockmodel, stats: &mut RunStats) {
        let live = self.live_shards();
        for &s in &live {
            self.replicas[s] = Some(coordinator.clone());
            self.net.account(resync_frame_len(graph.num_vertices()));
        }
        let clone_cost = self.cfg.sbp.cost_model.rebuild_cost(graph.num_edges());
        stats
            .sim_mcmc
            .add_parallel_uniform(live.len() as f64 * clone_cost, 0.0);
    }

    /// Full-state resync of shard `s` from the coordinator.
    fn resync(&mut self, s: usize, graph: &Graph, coordinator: &Blockmodel) {
        self.replicas[s] = Some(coordinator.clone());
        for p in 0..self.num_shards() {
            self.trackers[s][p].skip_to(self.next_seq[p]);
        }
        self.net.account(resync_frame_len(graph.num_vertices()));
        self.net.totals.resyncs += 1;
    }

    /// Declare shard `dead` dead: re-vote its vertices on the coordinator
    /// by weighted neighbour majority (the PR 2 degradation machinery),
    /// redistribute its range over the survivors, and resync everyone to
    /// the repaired coordinator state.
    fn declare_dead(
        &mut self,
        dead: usize,
        graph: &Graph,
        coordinator: &mut Blockmodel,
    ) -> Result<(), HsbpError> {
        self.alive[dead] = false;
        self.replicas[dead] = None;
        let survivors = self.live_shards();
        if survivors.is_empty() {
            return Err(HsbpError::AllShardsFailed {
                num_shards: self.num_shards(),
            });
        }
        // The dead shard's local chain since its last delivered delta is
        // lost; re-derive its range from the surviving consensus.
        let mut assigned: Vec<Option<Block>> =
            coordinator.assignment().iter().map(|&b| Some(b)).collect();
        for &v in &self.owned[dead] {
            assigned[v as usize] = None;
        }
        let reassigned = reassign_dropped(graph, &mut assigned, coordinator.num_blocks());
        let new_assignment: Vec<Block> = assigned.into_iter().map(|b| b.unwrap_or(0)).collect();
        coordinator.rebuild(graph, new_assignment);
        // Redistribute ownership round-robin over the survivors.
        let orphans = std::mem::take(&mut self.owned[dead]);
        for (i, v) in orphans.into_iter().enumerate() {
            let heir = survivors[i % survivors.len()];
            self.owned[heir].push(v);
        }
        for &s in &survivors {
            self.owned[s].sort_unstable();
        }
        self.dead_log.push(DeadShard {
            shard: dead,
            round: self.round,
            reassigned_vertices: reassigned,
        });
        // Everyone restarts from the repaired coordinator state.
        for &s in &survivors {
            self.resync(s, graph, coordinator);
        }
        Ok(())
    }

    /// One sync round: `batch` local sweeps per live shard, delta
    /// broadcast, recovery barrier, digest exchange.
    #[allow(clippy::too_many_arguments)]
    fn sync_round(
        &mut self,
        graph: &Graph,
        coordinator: &mut Blockmodel,
        salt: u64,
        sweep_base: u64,
        batch: usize,
        stats: &mut RunStats,
        exec: &ThreadPool,
        arena: &mut ProposalArena,
    ) -> Result<(u64, u64), HsbpError> {
        let cfg = &self.cfg.sbp;
        let round = self.round;
        let start_messages = self.net.totals.messages;
        let start_bytes = self.net.totals.bytes;
        let start_retransmits = self.net.totals.retransmits;
        let start_resyncs = self.net.totals.resyncs;

        // Senders: live shards that are not hung this round. A silent
        // shard's local work is lost — it contributes nothing.
        let live = self.live_shards();
        let senders: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&s| !self.net.plan().is_silent(s, round))
            .collect();

        // 1. Local sweeps: serial MH over the owned vertices against the
        // shard's own replica, immediate local updates, moves recorded in
        // application order (the EA-SBP worker loop, verbatim).
        type ShardMoves = (usize, Blockmodel, Vec<(Vertex, Block)>);
        let locals: Vec<(usize, Blockmodel)> = senders
            .iter()
            .map(|&s| {
                (
                    s,
                    self.replicas[s]
                        .take()
                        .unwrap_or_else(|| coordinator.clone()),
                )
            })
            .collect();
        let owned = &self.owned;
        let results: Vec<ShardMoves> = exec.map_vec(
            locals,
            || (),
            |(), (s, mut local)| {
                with_resident(ProposalArena::default, |arena| {
                    let mut moves: Vec<(Vertex, Block)> = Vec::new();
                    for step in 0..batch {
                        let sweep_idx = sweep_base + step as u64;
                        for &v in &owned[s] {
                            let mut rng = SplitMix64::for_item(salt, sweep_idx, u64::from(v));
                            let from = local.block_of(v);
                            let to = propose_block(graph, &local, local.assignment(), v, &mut rng);
                            if to == from {
                                continue;
                            }
                            NeighborCounts::gather_into(
                                graph,
                                local.assignment(),
                                v,
                                &mut arena.scratch,
                                &mut arena.counts,
                            );
                            let eval = evaluate_move_with_mode(
                                &local,
                                from,
                                to,
                                &arena.counts,
                                &mut arena.eval,
                                cfg.math_mode,
                            );
                            if accept_move(&eval, cfg.beta, &mut rng) {
                                local.apply_move(v, from, to, &arena.counts);
                                moves.push((v, to));
                            }
                        }
                    }
                    (s, local, moves)
                })
            },
        );
        let swept: usize = senders.iter().map(|&s| self.owned[s].len()).sum();
        stats.proposals += (swept * batch) as u64;
        let costs: Vec<f64> = senders
            .iter()
            .flat_map(|&s| self.owned[s].iter())
            .map(|&v| cfg.cost_model.proposal_cost(graph.incident_arity(v)))
            .collect();
        for _ in 0..batch {
            stats.sim_mcmc.add_parallel(&costs);
        }

        // 2. Consolidate the coordinator from the merged membership — the
        // same procedure as core's `consolidate_sweep` (Auto mode): count
        // the net membership diff, shortcut the no-move round, and pick
        // incremental replay vs rebuild by the cost-model crossover.
        let mut moves_of: Vec<Option<Vec<(Vertex, Block)>>> = vec![None; self.num_shards()];
        let mut replicas_back: Vec<(usize, Blockmodel)> = Vec::with_capacity(results.len());
        let mut total_moves = 0usize;
        for (s, local, moves) in results {
            stats.accepted += moves.len() as u64;
            total_moves += moves.len();
            moves_of[s] = Some(moves);
            replicas_back.push((s, local));
        }
        let mut new_assignment = coordinator.assignment_snapshot();
        for moves in moves_of.iter().flatten() {
            for &(v, to) in moves {
                new_assignment[v as usize] = to;
            }
        }
        let current = coordinator.assignment();
        let mut net_moves = 0usize;
        let mut incremental_cost = 0.0;
        for v in 0..graph.num_vertices() {
            if current[v] != new_assignment[v] {
                net_moves += 1;
                incremental_cost += cfg
                    .cost_model
                    .consolidation_move_cost(graph.incident_arity(v as Vertex));
            }
        }
        if net_moves == 0 {
            stats.consolidations_incremental += 1;
        } else if cfg
            .cost_model
            .prefer_incremental_consolidation(incremental_cost, graph.num_edges())
        {
            apply_assignment_diff(graph, coordinator, &new_assignment, arena);
            stats.consolidated_moves += net_moves as u64;
            stats.consolidations_incremental += 1;
            stats.sim_mcmc.add_serial(incremental_cost);
        } else {
            coordinator.rebuild(graph, new_assignment);
            stats.consolidations_rebuild += 1;
            stats.sim_mcmc.add_parallel_uniform(
                cfg.cost_model.rebuild_cost(graph.num_edges()),
                cfg.cost_model.rebuild_serial_fraction,
            );
        }
        for (s, local) in replicas_back {
            self.replicas[s] = Some(local);
        }

        // 3. Broadcast: one sequence number per live shard per round (the
        // silent shard burns its number — that unfilled gap is exactly how
        // receivers notice it).
        let seq_of: Vec<u64> = self.next_seq.clone();
        for &s in &live {
            self.next_seq[s] += 1;
        }
        let mut frames: Vec<Option<Vec<u8>>> = vec![None; self.num_shards()];
        for &s in &senders {
            let moves = moves_of[s].clone().unwrap_or_default();
            frames[s] = Some(encode_msg(
                seq_of[s],
                &SyncPayload::Delta {
                    shard: s as u32,
                    moves,
                },
            ));
        }
        for &s in &senders {
            let frame = frames[s].clone().unwrap_or_default();
            for &dst in &live {
                if dst != s {
                    self.net.send(round, s, dst, seq_of[s], 1, &frame);
                }
            }
        }

        // 4. Recovery barrier: apply inboxes, NACK the gaps, retransmit,
        // and only then let anyone proceed to the next sweep.
        let sync_cost: f64 = moves_of
            .iter()
            .flatten()
            .flatten()
            .map(|&(v, _)| {
                cfg.cost_model
                    .consolidation_move_cost(graph.incident_arity(v))
            })
            .sum();
        if total_moves > 0 {
            stats
                .sim_mcmc
                .add_parallel_uniform(live.len() as f64 * sync_cost, 0.0);
        }
        let mut pending: Vec<Vec<PendingDelta>> = vec![Vec::new(); self.num_shards()];
        let mut newly_dead: Vec<usize> = Vec::new();
        for attempt in 1..=(self.cfg.max_retries as u32 + 1) {
            // Deliver and apply whatever arrived.
            for &r in &live {
                let arrivals = self.net.collect(round, r);
                for (src, frame) in arrivals {
                    let (seq, payload) = match decode_msg(&frame) {
                        Ok(m) => m,
                        Err(_) => {
                            // Corruption in flight: indistinguishable from
                            // loss; the sequence gap drives recovery.
                            self.net.totals.corrupt_detected += 1;
                            continue;
                        }
                    };
                    let SyncPayload::Delta { moves, .. } = payload else {
                        continue;
                    };
                    match self.trackers[r][src].offer(seq) {
                        Offer::Apply => {
                            if let Some(replica) = self.replicas[r].as_mut() {
                                apply_moves(graph, replica, &moves, arena);
                            }
                            // Drain any buffered successors.
                            loop {
                                let next = self.trackers[r][src].expected();
                                let Some(pos) = pending[r]
                                    .iter()
                                    .position(|&(p, s, _)| p == src && s == next)
                                else {
                                    break;
                                };
                                let (_, s, buffered) = pending[r].swap_remove(pos);
                                self.trackers[r][src].offer(s);
                                if let Some(replica) = self.replicas[r].as_mut() {
                                    apply_moves(graph, replica, &buffered, arena);
                                }
                            }
                        }
                        Offer::Duplicate => self.net.totals.replays_ignored += 1,
                        Offer::Future => pending[r].push((src, seq, moves)),
                    }
                }
            }
            // Who is still missing what?
            let mut gaps: Vec<(usize, usize)> = Vec::new(); // (receiver, sender)
            for &r in &live {
                for &p in &live {
                    if p != r && self.trackers[r][p].expected() <= seq_of[p] {
                        gaps.push((r, p));
                    }
                }
            }
            if gaps.is_empty() {
                break;
            }
            if attempt <= self.cfg.max_retries as u32 {
                // NACK + retransmit (the retransmission re-rolls its fate).
                for &(r, p) in &gaps {
                    self.net.account(nack_frame_len());
                    self.net.totals.nacks += 1;
                    if let Some(frame) = frames[p].as_ref() {
                        let frame = frame.clone();
                        self.net.totals.retransmits += 1;
                        self.net.send(round, p, r, seq_of[p], attempt + 1, &frame);
                    }
                }
            } else {
                // Retry budget exhausted. A live sender's delta exists at
                // the coordinator — resync the receiver. A sender that
                // produced nothing is dead.
                let mut resync_rx: Vec<usize> = Vec::new();
                for &(r, p) in &gaps {
                    if frames[p].is_some() {
                        resync_rx.push(r);
                    } else if !newly_dead.contains(&p) {
                        newly_dead.push(p);
                    }
                }
                resync_rx.sort_unstable();
                resync_rx.dedup();
                for r in resync_rx {
                    // Skip receivers that will be resynced by the death
                    // handling below anyway.
                    if newly_dead.is_empty() {
                        self.resync(r, graph, coordinator);
                    }
                }
                break;
            }
        }
        for dead in newly_dead {
            self.declare_dead(dead, graph, coordinator)?;
        }

        // 5. Injected replica divergence (the desync fault): corrupt the
        // replica in place, exactly what the digest exchange exists to
        // catch.
        for s in self.live_shards() {
            if self.net.plan().desyncs_at(s, round) {
                if let Some(replica) = self.replicas[s].as_mut() {
                    replica.inject_state_corruption(mix_words(&[
                        self.net.plan().seed,
                        0x4445_5359_4e43, // "DESYNC"
                        round,
                        s as u64,
                    ]));
                }
            }
        }

        // 6. Periodic digest exchange: every live shard reports an FNV-1a
        // hash of its full replica state; divergence from the coordinator
        // triggers a full-state resync.
        if self.cfg.digest_every > 0 && (round + 1).is_multiple_of(self.cfg.digest_every as u64) {
            let reference = blockmodel_digest(coordinator);
            for s in self.live_shards() {
                self.net.account(digest_frame_len());
                let diverged = self.replicas[s]
                    .as_ref()
                    .is_some_and(|replica| blockmodel_digest(replica) != reference);
                if diverged {
                    self.resync(s, graph, coordinator);
                }
            }
        }

        // Under the null plan every replica must already equal the
        // consolidated model — the exactness invariant.
        #[cfg(debug_assertions)]
        if self.net.plan().is_null() {
            for s in self.live_shards() {
                debug_assert_eq!(
                    self.replicas[s].as_ref(),
                    Some(&*coordinator),
                    "shard {s} replica drifted from the coordinator"
                );
            }
        }

        self.rounds_log.push(RoundNet {
            round,
            messages: self.net.totals.messages - start_messages,
            bytes: self.net.totals.bytes - start_bytes,
            retransmits: self.net.totals.retransmits - start_retransmits,
            resyncs: self.net.totals.resyncs - start_resyncs,
        });
        self.round += 1;
        Ok((
            self.net.totals.bytes - start_bytes,
            self.net.totals.retransmits - start_retransmits,
        ))
    }
}

/// Fold a foreign move list into `replica` as exact integer deltas against
/// its own evolving assignment (the EA-SBP replica sync).
fn apply_moves(
    graph: &Graph,
    replica: &mut Blockmodel,
    moves: &[(Vertex, Block)],
    arena: &mut ProposalArena,
) {
    for &(v, to) in moves {
        let from = replica.block_of(v);
        if from == to {
            continue;
        }
        NeighborCounts::gather_into(
            graph,
            replica.assignment(),
            v,
            &mut arena.scratch,
            &mut arena.counts,
        );
        replica.apply_move(v, from, to, &arena.counts);
    }
}

/// Replay every `current != target` vertex through `apply_move`, ascending
/// by vertex id — core's incremental consolidation, verbatim.
fn apply_assignment_diff(
    graph: &Graph,
    bm: &mut Blockmodel,
    target: &[Block],
    arena: &mut ProposalArena,
) {
    for (v, &to) in target.iter().enumerate() {
        let v = v as Vertex;
        let from = bm.block_of(v);
        if from == to {
            continue;
        }
        NeighborCounts::gather_into(
            graph,
            bm.assignment(),
            v,
            &mut arena.scratch,
            &mut arena.counts,
        );
        bm.apply_move(v, from, to, &arena.counts);
    }
}

/// Public building block for the codec property tests: deliver one decoded
/// delta to a replica exactly as the protocol does.
pub fn apply_delta(graph: &Graph, replica: &mut Blockmodel, moves: &[(Vertex, Block)]) {
    let mut arena = ProposalArena::default();
    apply_moves(graph, replica, moves, &mut arena);
}

/// One MCMC phase of the exact distributed driver. Mirrors
/// `run_mcmc_phase_controlled` with the EA-SBP sweep replaced by the
/// channel-synchronised distributed sweep; with `sync_every = 1` the salt,
/// counter RNG, convergence window and audit cadence line up exactly.
#[allow(clippy::too_many_arguments)]
fn exact_mcmc_phase(
    graph: &Graph,
    coordinator: &mut Blockmodel,
    cluster: &mut Cluster<'_>,
    cfg: &ExactConfig,
    phase_index: u64,
    stats: &mut RunStats,
    exec: &ThreadPool,
) -> Result<McmcOutcome, HsbpError> {
    let salt = mix_words(&[cfg.sbp.seed, 0x4d43_4d43, phase_index]); // "MCMC"
    let n = graph.num_vertices();
    stats.mcmc_phases += 1;
    cluster.reseed(graph, coordinator, stats);

    let mut arena = ProposalArena::default();
    let mut previous = mdl::mdl(coordinator, n, graph.total_weight());
    let mut recent_deltas: Vec<f64> = Vec::with_capacity(3);
    let mut sweeps = 0usize;
    let mut converged = false;
    while sweeps < cfg.sbp.max_sweeps {
        let batch = cfg.sync_every.min(cfg.sbp.max_sweeps - sweeps);
        let sweeps_before = stats.mcmc_sweeps;
        cluster.sync_round(
            graph,
            coordinator,
            salt,
            sweeps as u64,
            batch,
            stats,
            exec,
            &mut arena,
        )?;
        sweeps += batch;
        stats.mcmc_sweeps += batch;
        stats.sync_rounds += 1;

        // Drift-injection and audit hooks fire when the round crossed
        // their cumulative-sweep boundary (at batch 1: the exact sweep).
        if let Some(at) = cfg.sbp.inject_drift_at_sweep {
            if sweeps_before < at && at <= stats.mcmc_sweeps {
                coordinator.inject_state_corruption(mix_words(&[
                    cfg.sbp.seed,
                    0x4452_4946, // "DRIF"
                    at as u64,
                ]));
                // The replicas no longer match the (corrupted) coordinator:
                // full-state resync, charged like an EA replica reseed.
                let live = cluster.live_shards();
                for &s in &live {
                    cluster.resync(s, graph, coordinator);
                }
                stats.sim_mcmc.add_parallel_uniform(
                    live.len() as f64 * cfg.sbp.cost_model.rebuild_cost(graph.num_edges()),
                    0.0,
                );
            }
        }
        if cfg.sbp.audit_cadence > 0
            && sweeps_before / cfg.sbp.audit_cadence != stats.mcmc_sweeps / cfg.sbp.audit_cadence
        {
            stats.audits_run += 1;
            if let Some(report) = audit_blockmodel(coordinator, graph) {
                if cfg.sbp.strict_audit {
                    return Err(HsbpError::StateDrift {
                        sweep: stats.mcmc_sweeps,
                        detail: report.summary(),
                    });
                }
                repair_blockmodel(coordinator, graph);
                stats.drift_events.push(DriftEvent {
                    total_sweep: stats.mcmc_sweeps,
                    phase_index,
                    mismatches: report.mismatches,
                    mdl_delta: report.mdl_delta,
                    repaired: true,
                });
                // The repair rewrote the coordinator: broadcast it (the
                // PR 3 repair path surfaced as protocol resyncs), charged
                // like an EA replica reseed.
                let live = cluster.live_shards();
                for &s in &live {
                    cluster.resync(s, graph, coordinator);
                }
                stats.sim_mcmc.add_parallel_uniform(
                    live.len() as f64 * cfg.sbp.cost_model.rebuild_cost(graph.num_edges()),
                    0.0,
                );
            }
        }

        let current = mdl::mdl(coordinator, n, graph.total_weight());
        let delta = previous.total - current.total;
        previous = current;
        if recent_deltas.len() == 3 {
            recent_deltas.remove(0);
        }
        recent_deltas.push(delta.abs());
        if recent_deltas.len() == 3 {
            let mean: f64 = recent_deltas.iter().sum::<f64>() / 3.0;
            if mean < cfg.sbp.mcmc_threshold * previous.total.abs().max(1.0) {
                converged = true;
                break;
            }
        }
    }
    Ok(McmcOutcome {
        sweeps,
        mdl: previous,
        converged,
        truncated: false,
    })
}

/// One evaluated point of the golden-section search.
#[derive(Debug, Clone)]
struct Evaluated {
    num_blocks: usize,
    mdl_total: f64,
    assignment: Vec<Block>,
}

/// Golden-section interior fraction (same constant as the core driver).
const GOLDEN: f64 = 0.382;

/// Run exact distributed SBP: the full agglomerative golden-section search
/// with the MCMC phase executed as a fault-tolerant distributed sweep over
/// `cfg.num_shards` replicated blockmodels.
///
/// Deterministic in `(graph, cfg)` — including the fault plan: every
/// drop/retransmit/resync decision is a pure function of the plan seed and
/// the message coordinates. Under the null plan with `sync_every = 1` the
/// returned labels are bit-identical to
/// `run_sbp(Variant::ExactAsync, exact_async_workers = num_shards)`.
pub fn run_exact_sbp(graph: &Graph, cfg: &ExactConfig) -> Result<ExactRun, HsbpError> {
    cfg.validate().map_err(HsbpError::InvalidConfig)?;
    let mut stats = RunStats::new(&cfg.sbp);
    let n = graph.num_vertices();
    if n == 0 {
        return Ok(ExactRun {
            result: SbpResult {
                assignment: Vec::new(),
                num_blocks: 0,
                mdl: mdl::Mdl {
                    log_likelihood: 0.0,
                    model_complexity: 0.0,
                    total: 0.0,
                },
                normalized_mdl: f64::NAN,
                trajectory: Vec::new(),
                stats,
            },
            rounds: Vec::new(),
            net: NetTotals::default(),
            dead_shards: Vec::new(),
            num_shards: cfg.num_shards,
        });
    }

    let ctrl = RunControl::unlimited();
    let exec = pool_for(cfg.sbp.threads);
    let mut cluster = Cluster::new(graph, cfg);
    let mut bm = stats
        .timer
        .time(Phase::Other, || Blockmodel::singleton_partition(graph));
    let singleton_mdl = mdl::mdl(&bm, n, graph.total_weight()).total;

    let mut upper: Option<Evaluated> = Some(Evaluated {
        num_blocks: n,
        mdl_total: singleton_mdl,
        assignment: bm.assignment().to_vec(),
    });
    let mut mid: Option<Evaluated> = None;
    let mut lower: Option<Evaluated> = None;

    let mut phase_index: u64 = 0;
    let mut trajectory: Vec<(usize, f64)> = Vec::new();
    loop {
        if stats.outer_iterations >= cfg.sbp.max_outer_iterations {
            break;
        }
        let bracketed = mid.is_some() && lower.is_some();
        let target = if !bracketed {
            let b = bm.num_blocks();
            if b <= 1 {
                break;
            }
            (((b as f64) * cfg.sbp.block_reduction_rate).round() as usize).clamp(1, b - 1)
        } else {
            let (Some(u), Some(m), Some(l)) = (&upper, &mid, &lower) else {
                unreachable!("bracketed implies upper, mid and lower are all set");
            };
            if u.num_blocks.saturating_sub(l.num_blocks) <= 2 {
                break;
            }
            let gap_hi = u.num_blocks - m.num_blocks;
            let gap_lo = m.num_blocks - l.num_blocks;
            if gap_hi >= gap_lo && gap_hi >= 2 {
                let t = m.num_blocks + ((gap_hi as f64) * GOLDEN).round() as usize;
                let t = t.clamp(m.num_blocks + 1, u.num_blocks - 1);
                let source = u.clone();
                bm = stats.timer.time(Phase::Other, || {
                    Blockmodel::from_assignment(graph, source.assignment, source.num_blocks)
                });
                t
            } else if gap_lo >= 2 {
                let t = m.num_blocks - ((gap_lo as f64) * GOLDEN).round() as usize;
                let t = t.clamp(l.num_blocks + 1, m.num_blocks - 1);
                let source = m.clone();
                bm = stats.timer.time(Phase::Other, || {
                    Blockmodel::from_assignment(graph, source.assignment, source.num_blocks)
                });
                t
            } else {
                break;
            }
        };

        let start = std::time::Instant::now();
        let merge_out = merge_phase_controlled(
            graph,
            &mut bm,
            target,
            &cfg.sbp,
            phase_index,
            &mut stats,
            &ctrl,
        );
        stats.timer.add(Phase::BlockMerge, start.elapsed());
        debug_assert!(!merge_out.truncated, "unlimited control cannot truncate");
        let start = std::time::Instant::now();
        let mcmc_res = exact_mcmc_phase(
            graph,
            &mut bm,
            &mut cluster,
            cfg,
            phase_index,
            &mut stats,
            exec,
        );
        stats.timer.add(Phase::Mcmc, start.elapsed());
        let mcmc_out = mcmc_res?;
        phase_index += 1;
        stats.outer_iterations += 1;

        let evaluated = Evaluated {
            num_blocks: bm.num_blocks(),
            mdl_total: mcmc_out.mdl.total,
            assignment: bm.assignment().to_vec(),
        };
        trajectory.push((evaluated.num_blocks, evaluated.mdl_total));

        match mid.take() {
            None => mid = Some(evaluated),
            Some(displaced) if evaluated.mdl_total < displaced.mdl_total => {
                if evaluated.num_blocks < displaced.num_blocks {
                    if displaced.num_blocks < upper.as_ref().map_or(usize::MAX, |u| u.num_blocks) {
                        upper = Some(displaced);
                    }
                } else if displaced.num_blocks > lower.as_ref().map_or(0, |l| l.num_blocks) {
                    lower = Some(displaced);
                }
                mid = Some(evaluated);
            }
            Some(m) => {
                if evaluated.num_blocks < m.num_blocks {
                    if lower
                        .as_ref()
                        .is_none_or(|l| evaluated.num_blocks > l.num_blocks)
                    {
                        lower = Some(evaluated);
                    }
                } else if evaluated.num_blocks > m.num_blocks
                    && upper
                        .as_ref()
                        .is_none_or(|u| evaluated.num_blocks < u.num_blocks)
                {
                    upper = Some(evaluated);
                }
                mid = Some(m);
            }
        }

        if !(mid.is_some() && lower.is_some()) && bm.num_blocks() <= 1 {
            break;
        }
    }

    let Some(best) = mid.or(upper) else {
        unreachable!("at least the singleton state exists");
    };
    let bm = Blockmodel::from_assignment(graph, best.assignment.clone(), best.num_blocks);
    let final_mdl = mdl::mdl(&bm, n, graph.total_weight());
    let null = mdl::null_mdl(graph.total_weight());
    let started_shards = cluster.num_shards();
    stats.sync_retransmits = cluster.net.totals.retransmits;
    stats.sync_resyncs = cluster.net.totals.resyncs;
    stats.sync_bytes = cluster.net.totals.bytes;
    Ok(ExactRun {
        result: SbpResult {
            assignment: best.assignment,
            num_blocks: best.num_blocks,
            mdl: final_mdl,
            normalized_mdl: if null == 0.0 {
                f64::NAN
            } else {
                final_mdl.total / null
            },
            trajectory,
            stats,
        },
        rounds: cluster.rounds_log,
        net: cluster.net.totals,
        dead_shards: cluster.dead_log,
        num_shards: started_shards,
    })
}
