//! The replicated-blockmodel sync channel: message codec, deterministic
//! network fault injection, and the in-process emulated wire the exact
//! distributed mode ([`crate::exact`]) broadcasts its move deltas over.
//!
//! ## Wire format
//!
//! Every message reuses the WAL record framing (PR 7's `hsbp-serve` log):
//!
//! ```text
//! [u32 payload_len][u64 seq][u64 fnv1a(payload)][payload]      little-endian
//! ```
//!
//! The payload starts with a kind byte:
//!
//! ```text
//! 1  Delta   [u32 shard][u32 move_count][(u32 vertex, u32 block)…]
//! 2  Nack    [u32 shard][u32 missing_from][u64 missing_seq]
//! 3  Digest  [u32 shard][u64 digest]
//! 4  Resync  [u32 num_blocks][u32 n][u32 assignment…]
//! ```
//!
//! FNV-1a detects every single-byte payload corruption (each step of the
//! hash is injective in the running state: xor with a distinct byte, then
//! multiply by an odd prime mod 2^64), so the corrupt fault below is caught
//! at a rate of exactly 100% — the codec property tests pin this.
//!
//! ## Fault model
//!
//! [`NetFaultPlan`] is pure data and all of its decisions are pure
//! functions of `(plan seed, fault kind, src, dst, seq, attempt)` via
//! splitmix mixing — the same plan against the same run is bit-for-bit
//! reproducible regardless of thread scheduling, and a retransmitted
//! message (`attempt + 1`) re-rolls its fate independently. The CLI grammar
//! (`--net-fault-plan`) is a comma-separated list of directives:
//!
//! ```text
//! seed:N            seed for the per-message fault draws (default 0)
//! drop:P            drop each delivery with probability P
//! dup:P             deliver twice with probability P
//! reorder:P         scramble the receiver's arrival order
//! corrupt:P         flip one payload byte with probability P
//! delay:P=ROUNDS    deliver ROUNDS sync rounds late with probability P
//! silent:SHARD@ROUND   shard goes permanently silent from that round on
//! desync:SHARD@ROUND   corrupt the shard's replica state after that round
//! ```

use hsbp_blockmodel::{Block, Blockmodel};
use hsbp_collections::sample::mix_words;
use hsbp_graph::Vertex;
use hsbp_timing::CostModel;

/// Version of the shard sync protocol (wire format + recovery state
/// machine). Reported by `hsbp version`; bumped on any incompatible change
/// to the message layout or the retransmit/resync semantics.
pub const SYNC_PROTOCOL_VERSION: u32 = 1;

/// Bytes of the record header: `[u32 len][u64 seq][u64 checksum]`.
pub const HEADER_LEN: usize = 4 + 8 + 8;

/// FNV-1a over `bytes` (same constants as the serve WAL).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One decoded sync-protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncPayload {
    /// Accepted moves of one shard for one sync round, in application
    /// order (a vertex may appear more than once when `sync_every > 1`).
    Delta {
        /// Sending shard.
        shard: u32,
        /// `(vertex, to_block)` accepted moves.
        moves: Vec<(Vertex, Block)>,
    },
    /// "I am missing your message `missing_seq`" — triggers a retransmit.
    Nack {
        /// Complaining shard.
        shard: u32,
        /// Shard whose message is missing.
        missing_from: u32,
        /// The missing sequence number.
        missing_seq: u64,
    },
    /// Periodic replica digest for divergence detection.
    Digest {
        /// Reporting shard.
        shard: u32,
        /// [`blockmodel_digest`] of the shard's replica.
        digest: u64,
    },
    /// Full-state resync from the coordinator: authoritative membership.
    Resync {
        /// Block count of the authoritative model.
        num_blocks: u32,
        /// Membership of every vertex.
        assignment: Vec<Block>,
    },
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the header, or fewer than the header promises.
    Truncated,
    /// The FNV-1a checksum does not match the payload.
    BadChecksum,
    /// Unknown payload kind byte.
    UnknownKind(u8),
    /// The payload's internal lengths disagree with its byte count.
    Malformed,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::BadChecksum => write!(f, "checksum mismatch"),
            DecodeError::UnknownKind(k) => write!(f, "unknown payload kind {k}"),
            DecodeError::Malformed => write!(f, "malformed payload"),
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Malformed)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Malformed)?;
        self.pos = end;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(slice);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let end = self.pos + 8;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Malformed)?;
        self.pos = end;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(slice);
        Ok(u64::from_le_bytes(buf))
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::Malformed)
        }
    }
}

/// Encode `payload` under sequence number `seq` into a framed wire message.
pub fn encode_msg(seq: u64, payload: &SyncPayload) -> Vec<u8> {
    let mut body = Vec::new();
    match payload {
        SyncPayload::Delta { shard, moves } => {
            body.push(1u8);
            put_u32(&mut body, *shard);
            put_u32(&mut body, moves.len() as u32);
            for &(v, b) in moves {
                put_u32(&mut body, v);
                put_u32(&mut body, b);
            }
        }
        SyncPayload::Nack {
            shard,
            missing_from,
            missing_seq,
        } => {
            body.push(2u8);
            put_u32(&mut body, *shard);
            put_u32(&mut body, *missing_from);
            put_u64(&mut body, *missing_seq);
        }
        SyncPayload::Digest { shard, digest } => {
            body.push(3u8);
            put_u32(&mut body, *shard);
            put_u64(&mut body, *digest);
        }
        SyncPayload::Resync {
            num_blocks,
            assignment,
        } => {
            body.push(4u8);
            put_u32(&mut body, *num_blocks);
            put_u32(&mut body, assignment.len() as u32);
            for &b in assignment {
                put_u32(&mut body, b);
            }
        }
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
    put_u32(&mut frame, body.len() as u32);
    put_u64(&mut frame, seq);
    put_u64(&mut frame, checksum(&body));
    frame.extend_from_slice(&body);
    frame
}

/// Decode one framed wire message into `(seq, payload)`.
pub fn decode_msg(frame: &[u8]) -> Result<(u64, SyncPayload), DecodeError> {
    if frame.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let mut header = Reader {
        bytes: &frame[..HEADER_LEN],
        pos: 0,
    };
    let len = header.u32().map_err(|_| DecodeError::Truncated)? as usize;
    let seq = header.u64().map_err(|_| DecodeError::Truncated)?;
    let sum = header.u64().map_err(|_| DecodeError::Truncated)?;
    let body = frame
        .get(HEADER_LEN..HEADER_LEN + len)
        .ok_or(DecodeError::Truncated)?;
    if frame.len() != HEADER_LEN + len {
        return Err(DecodeError::Malformed);
    }
    if checksum(body) != sum {
        return Err(DecodeError::BadChecksum);
    }
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    let payload = match r.u8().map_err(|_| DecodeError::Malformed)? {
        1 => {
            let shard = r.u32()?;
            let count = r.u32()? as usize;
            // Cap against absurd counts so a (theoretically) colliding
            // corrupted frame cannot force a huge allocation.
            if count > body.len() {
                return Err(DecodeError::Malformed);
            }
            let mut moves = Vec::with_capacity(count);
            for _ in 0..count {
                moves.push((r.u32()?, r.u32()?));
            }
            SyncPayload::Delta { shard, moves }
        }
        2 => SyncPayload::Nack {
            shard: r.u32()?,
            missing_from: r.u32()?,
            missing_seq: r.u64()?,
        },
        3 => SyncPayload::Digest {
            shard: r.u32()?,
            digest: r.u64()?,
        },
        4 => {
            let num_blocks = r.u32()?;
            let n = r.u32()? as usize;
            if n > body.len() {
                return Err(DecodeError::Malformed);
            }
            let mut assignment = Vec::with_capacity(n);
            for _ in 0..n {
                assignment.push(r.u32()?);
            }
            SyncPayload::Resync {
                num_blocks,
                assignment,
            }
        }
        other => return Err(DecodeError::UnknownKind(other)),
    };
    r.done()?;
    Ok((seq, payload))
}

/// Digest of a replica's full state: FNV-1a over the membership, block
/// count, degree caches, block sizes and every non-zero cell of the
/// inter-block matrix. The sparse rows are canonical (sorted, zero-free),
/// so equal logical states hash equally — and the digest covers the `B`
/// cells and degree caches that [`Blockmodel::inject_state_corruption`]
/// perturbs without touching the membership.
pub fn blockmodel_digest(bm: &Blockmodel) -> u64 {
    let mut bytes = Vec::new();
    put_u32(&mut bytes, bm.num_blocks() as u32);
    for &b in bm.assignment() {
        put_u32(&mut bytes, b);
    }
    for r in 0..bm.num_blocks() as Block {
        put_u64(&mut bytes, bm.d_out(r));
        put_u64(&mut bytes, bm.d_in(r));
        put_u32(&mut bytes, bm.block_size(r));
        for (s, w) in bm.row(r).iter() {
            put_u32(&mut bytes, s);
            put_u64(&mut bytes, w);
        }
    }
    checksum(&bytes)
}

/// Per-sender delivery tracker: enforces in-order application of the
/// sequence-numbered delta stream and classifies arrivals.
#[derive(Debug, Clone, Default)]
pub struct PeerTracker {
    next: u64,
}

/// What a receiver should do with an arriving sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// In order: apply, the tracker advanced.
    Apply,
    /// Already applied (duplicate or late original after recovery): drop.
    Duplicate,
    /// Ahead of the expected number: hold until the gap fills.
    Future,
}

impl PeerTracker {
    /// Tracker expecting `next` as the first sequence number.
    pub fn starting_at(next: u64) -> Self {
        Self { next }
    }

    /// Next sequence number this tracker will accept.
    pub fn expected(&self) -> u64 {
        self.next
    }

    /// Classify an arriving sequence number, advancing on [`Offer::Apply`].
    pub fn offer(&mut self, seq: u64) -> Offer {
        match seq.cmp(&self.next) {
            std::cmp::Ordering::Less => Offer::Duplicate,
            std::cmp::Ordering::Greater => Offer::Future,
            std::cmp::Ordering::Equal => {
                self.next += 1;
                Offer::Apply
            }
        }
    }

    /// Jump the tracker past `seq` (after a full-state resync made every
    /// message up to and including `seq` moot).
    pub fn skip_to(&mut self, next: u64) {
        self.next = self.next.max(next);
    }
}

/// Per-message network fault directives (see the module docs for the
/// grammar). `PartialEq` compares the full directive list.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    /// Seed of the per-message fault draws.
    pub seed: u64,
    /// P(drop) per delivery attempt.
    pub drop: f64,
    /// P(duplicate delivery) per delivery.
    pub dup: f64,
    /// P(scrambled arrival order) per delivery.
    pub reorder: f64,
    /// P(single-byte payload corruption) per delivery.
    pub corrupt: f64,
    /// P(delayed delivery) per delivery.
    pub delay: f64,
    /// Rounds a delayed delivery is late by.
    pub delay_rounds: u64,
    /// `(shard, round)`: shard produces and answers nothing from `round`.
    pub silent: Vec<(usize, u64)>,
    /// `(shard, round)`: replica state corrupted in place after `round`.
    pub desync: Vec<(usize, u64)>,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop: 0.0,
            dup: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_rounds: 1,
            silent: Vec::new(),
            desync: Vec::new(),
        }
    }
}

/// Fault-kind tags for the per-message draws (distinct streams per kind).
const TAG_DROP: u64 = 0x4e45_5444_524f_5000; // "NETDROP"
const TAG_DUP: u64 = 0x4e45_5444_5550_0000;
const TAG_REORDER: u64 = 0x4e45_544f_5244_0000;
const TAG_CORRUPT: u64 = 0x4e45_5443_5252_0000;
const TAG_DELAY: u64 = 0x4e45_5444_4c59_0000;
const TAG_BYTE: u64 = 0x4e45_5442_5954_0000;

impl NetFaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no directive can ever fire.
    pub fn is_null(&self) -> bool {
        self.drop == 0.0
            && self.dup == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
            && self.silent.is_empty()
            && self.desync.is_empty()
    }

    fn roll(&self, tag: u64, src: u32, dst: u32, seq: u64, attempt: u32) -> f64 {
        let h = mix_words(&[
            self.seed,
            tag,
            u64::from(src),
            u64::from(dst),
            seq,
            u64::from(attempt),
        ]);
        // 53 uniform bits, same construction as SplitMix64::next_f64.
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should this delivery attempt be dropped?
    pub fn drops(&self, src: u32, dst: u32, seq: u64, attempt: u32) -> bool {
        self.drop > 0.0 && self.roll(TAG_DROP, src, dst, seq, attempt) < self.drop
    }

    /// Should this delivery be duplicated?
    pub fn duplicates(&self, src: u32, dst: u32, seq: u64, attempt: u32) -> bool {
        self.dup > 0.0 && self.roll(TAG_DUP, src, dst, seq, attempt) < self.dup
    }

    /// Should the receiver's arrival order be scrambled by this delivery?
    pub fn reorders(&self, src: u32, dst: u32, seq: u64, attempt: u32) -> bool {
        self.reorder > 0.0 && self.roll(TAG_REORDER, src, dst, seq, attempt) < self.reorder
    }

    /// Payload byte index to flip, when this delivery is corrupted.
    pub fn corrupts(&self, src: u32, dst: u32, seq: u64, attempt: u32) -> Option<u64> {
        if self.corrupt > 0.0 && self.roll(TAG_CORRUPT, src, dst, seq, attempt) < self.corrupt {
            Some(mix_words(&[
                self.seed,
                TAG_BYTE,
                u64::from(src),
                u64::from(dst),
                seq,
                u64::from(attempt),
            ]))
        } else {
            None
        }
    }

    /// Rounds this delivery is delayed by (0 = on time).
    pub fn delays(&self, src: u32, dst: u32, seq: u64, attempt: u32) -> u64 {
        if self.delay > 0.0 && self.roll(TAG_DELAY, src, dst, seq, attempt) < self.delay {
            self.delay_rounds
        } else {
            0
        }
    }

    /// True when `shard` is silent (hung) at `round`.
    pub fn is_silent(&self, shard: usize, round: u64) -> bool {
        self.silent.iter().any(|&(s, r)| s == shard && round >= r)
    }

    /// True when `shard`'s replica should be corrupted right after `round`.
    pub fn desyncs_at(&self, shard: usize, round: u64) -> bool {
        self.desync.iter().any(|&(s, r)| s == shard && round == r)
    }

    /// Parse the CLI grammar (see module docs). Whitespace around
    /// directives is ignored; an empty string is the null plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = NetFaultPlan::none();
        let rate = |directive: &str, text: &str| -> Result<f64, String> {
            let p: f64 = text
                .parse()
                .map_err(|e| format!("`{directive}`: bad probability `{text}`: {e}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("`{directive}`: probability must be in [0, 1]"));
            }
            Ok(p)
        };
        let shard_at = |directive: &str, text: &str| -> Result<(usize, u64), String> {
            let (shard_text, round_text) = text
                .split_once('@')
                .ok_or_else(|| format!("`{directive}`: expected SHARD@ROUND"))?;
            let shard: usize = shard_text
                .parse()
                .map_err(|e| format!("`{directive}`: bad shard `{shard_text}`: {e}"))?;
            let round: u64 = round_text
                .parse()
                .map_err(|e| format!("`{directive}`: bad round `{round_text}`: {e}"))?;
            Ok((shard, round))
        };
        for raw in spec.split(',') {
            let directive = raw.trim();
            if directive.is_empty() {
                continue;
            }
            let (kind, rest) = directive
                .split_once(':')
                .ok_or_else(|| format!("`{directive}`: expected KIND:ARG"))?;
            match kind {
                "seed" => {
                    plan.seed = rest
                        .parse()
                        .map_err(|e| format!("`{directive}`: bad seed `{rest}`: {e}"))?;
                }
                "drop" => plan.drop = rate(directive, rest)?,
                "dup" => plan.dup = rate(directive, rest)?,
                "reorder" => plan.reorder = rate(directive, rest)?,
                "corrupt" => plan.corrupt = rate(directive, rest)?,
                "delay" => {
                    let (p_text, rounds_text) = rest
                        .split_once('=')
                        .ok_or_else(|| format!("`{directive}`: delay needs P=ROUNDS"))?;
                    plan.delay = rate(directive, p_text)?;
                    plan.delay_rounds = rounds_text
                        .parse()
                        .map_err(|e| format!("`{directive}`: bad delay rounds: {e}"))?;
                    if plan.delay_rounds == 0 {
                        return Err(format!("`{directive}`: delay rounds must be >= 1"));
                    }
                }
                "silent" => plan.silent.push(shard_at(directive, rest)?),
                "desync" => plan.desync.push(shard_at(directive, rest)?),
                other => {
                    return Err(format!(
                        "`{directive}`: unknown net fault `{other}` \
                         (seed|drop|dup|reorder|corrupt|delay|silent|desync)"
                    ));
                }
            }
        }
        Ok(plan)
    }
}

impl std::fmt::Display for NetFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.seed != 0 {
            parts.push(format!("seed:{}", self.seed));
        }
        if self.drop > 0.0 {
            parts.push(format!("drop:{}", self.drop));
        }
        if self.dup > 0.0 {
            parts.push(format!("dup:{}", self.dup));
        }
        if self.reorder > 0.0 {
            parts.push(format!("reorder:{}", self.reorder));
        }
        if self.corrupt > 0.0 {
            parts.push(format!("corrupt:{}", self.corrupt));
        }
        if self.delay > 0.0 {
            parts.push(format!("delay:{}={}", self.delay, self.delay_rounds));
        }
        for &(s, r) in &self.silent {
            parts.push(format!("silent:{s}@{r}"));
        }
        for &(s, r) in &self.desync {
            parts.push(format!("desync:{s}@{r}"));
        }
        write!(f, "{}", parts.join(","))
    }
}

/// Aggregate wire counters of one run.
#[derive(Debug, Clone, Default)]
pub struct NetTotals {
    /// Messages put on the wire (including dropped and corrupted ones).
    pub messages: u64,
    /// Bytes put on the wire.
    pub bytes: u64,
    /// Deliveries swallowed by the drop fault.
    pub dropped: u64,
    /// Extra deliveries produced by the duplicate fault.
    pub duplicated: u64,
    /// Deliveries whose payload was corrupted in flight.
    pub corrupted: u64,
    /// Deliveries pushed to a later round by the delay fault.
    pub delayed: u64,
    /// Inbox collections whose arrival order was scrambled.
    pub reordered: u64,
    /// NACK-driven retransmissions performed.
    pub retransmits: u64,
    /// NACK messages sent.
    pub nacks: u64,
    /// Full-state resyncs from the coordinator.
    pub resyncs: u64,
    /// Duplicate deliveries discarded by the in-order trackers.
    pub replays_ignored: u64,
    /// Corrupted frames detected (checksum mismatch) and discarded.
    pub corrupt_detected: u64,
    /// Simulated communication cost (per-message latency + per-byte cost).
    pub comm_cost: f64,
}

/// The in-process emulated wire: applies a [`NetFaultPlan`] to every
/// delivery, accounts bytes and simulated communication cost, and hands
/// receivers their (possibly scrambled) round inboxes.
#[derive(Debug)]
pub struct EmulatedNet {
    plan: NetFaultPlan,
    cost: CostModel,
    /// Per-destination inboxes for the current round: `(src, frame)`.
    inboxes: Vec<Vec<(usize, Vec<u8>)>>,
    /// Delayed deliveries: `(due_round, dst, src, frame)`.
    future: Vec<(u64, usize, usize, Vec<u8>)>,
    /// Aggregate counters.
    pub totals: NetTotals,
}

impl EmulatedNet {
    /// A wire connecting `endpoints` shards under `plan`, costing messages
    /// with `cost`'s network weights.
    pub fn new(endpoints: usize, plan: NetFaultPlan, cost: CostModel) -> Self {
        Self {
            plan,
            cost,
            inboxes: vec![Vec::new(); endpoints],
            future: Vec::new(),
            totals: NetTotals::default(),
        }
    }

    /// The active fault plan.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Account one on-wire message of `bytes` bytes without delivering it
    /// (control-plane traffic: NACKs, digests, coordinator resyncs).
    pub fn account(&mut self, bytes: usize) {
        self.totals.messages += 1;
        self.totals.bytes += bytes as u64;
        self.totals.comm_cost += self.cost.message_cost(bytes);
    }

    /// Send `frame` from shard `src` to shard `dst` during `round`, rolling
    /// the per-message fault draws for `(seq, attempt)`. Delivery lands in
    /// `dst`'s inbox for this round (or a later one under the delay fault).
    pub fn send(
        &mut self,
        round: u64,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
        frame: &[u8],
    ) {
        self.account(frame.len());
        let (s, d) = (src as u32, dst as u32);
        if self.plan.drops(s, d, seq, attempt) {
            self.totals.dropped += 1;
            return;
        }
        let mut frame = frame.to_vec();
        if let Some(pos) = self.plan.corrupts(s, d, seq, attempt) {
            let payload_len = frame.len() - HEADER_LEN;
            if payload_len > 0 {
                let idx = HEADER_LEN + (pos % payload_len as u64) as usize;
                // Non-zero XOR mask: the byte always actually changes.
                frame[idx] ^= ((pos >> 32) as u8) | 1;
                self.totals.corrupted += 1;
            }
        }
        let copies = if self.plan.duplicates(s, d, seq, attempt) {
            self.totals.duplicated += 1;
            2
        } else {
            1
        };
        let delay = self.plan.delays(s, d, seq, attempt);
        for _ in 0..copies {
            if delay > 0 {
                self.totals.delayed += 1;
                self.future.push((round + delay, dst, src, frame.clone()));
            } else {
                self.inboxes[dst].push((src, frame.clone()));
            }
        }
    }

    /// Drain shard `dst`'s inbox for `round`: current-round deliveries plus
    /// any delayed frames that have come due, in a deterministic —
    /// possibly fault-scrambled — arrival order.
    pub fn collect(&mut self, round: u64, dst: usize) -> Vec<(usize, Vec<u8>)> {
        let mut arrivals = std::mem::take(&mut self.inboxes[dst]);
        let mut keep = Vec::new();
        for entry in self.future.drain(..) {
            if entry.0 <= round && entry.1 == dst {
                arrivals.push((entry.2, entry.3));
            } else {
                keep.push(entry);
            }
        }
        self.future = keep;
        // The reorder fault scrambles arrival order; the per-sender
        // sequence trackers are what straightens it back out.
        if !arrivals.is_empty() {
            let scramble = arrivals.iter().enumerate().any(|(i, (src, frame))| {
                let seq = frame
                    .get(4..12)
                    .map(|b| {
                        let mut buf = [0u8; 8];
                        buf.copy_from_slice(b);
                        u64::from_le_bytes(buf)
                    })
                    .unwrap_or(i as u64);
                self.plan.reorders(*src as u32, dst as u32, seq, 0)
            });
            if scramble {
                self.totals.reordered += 1;
                let seed = self.plan.seed;
                let mut keyed: Vec<(u64, (usize, Vec<u8>))> = arrivals
                    .into_iter()
                    .enumerate()
                    .map(|(i, m)| (mix_words(&[seed, TAG_REORDER, round, i as u64]), m))
                    .collect();
                keyed.sort_by_key(|&(k, _)| k);
                arrivals = keyed.into_iter().map(|(_, m)| m).collect();
            }
        }
        arrivals
    }

    /// True when no delayed deliveries are still in flight.
    pub fn quiescent(&self) -> bool {
        self.future.is_empty() && self.inboxes.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_payloads() -> Vec<SyncPayload> {
        vec![
            SyncPayload::Delta {
                shard: 3,
                moves: vec![(0, 1), (7, 2), (7, 0)],
            },
            SyncPayload::Delta {
                shard: 0,
                moves: Vec::new(),
            },
            SyncPayload::Nack {
                shard: 1,
                missing_from: 2,
                missing_seq: 41,
            },
            SyncPayload::Digest {
                shard: 2,
                digest: 0xdead_beef_cafe_f00d,
            },
            SyncPayload::Resync {
                num_blocks: 4,
                assignment: vec![0, 1, 2, 3, 1, 0],
            },
        ]
    }

    #[test]
    fn codec_roundtrip() {
        for (i, payload) in sample_payloads().into_iter().enumerate() {
            let frame = encode_msg(i as u64 + 10, &payload);
            let (seq, decoded) = decode_msg(&frame).unwrap();
            assert_eq!(seq, i as u64 + 10);
            assert_eq!(decoded, payload);
        }
    }

    #[test]
    fn truncation_detected() {
        let frame = encode_msg(5, &sample_payloads()[0]);
        for cut in 0..frame.len() {
            assert!(decode_msg(&frame[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn plan_parse_roundtrip() {
        let plan = NetFaultPlan::parse(
            "seed:9,drop:0.05, dup:0.2,reorder:0.5,corrupt:0.01,delay:0.3=2,silent:1@4,desync:0@8",
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert!(plan.is_silent(1, 4) && plan.is_silent(1, 9));
        assert!(!plan.is_silent(1, 3) && !plan.is_silent(0, 4));
        assert!(plan.desyncs_at(0, 8) && !plan.desyncs_at(0, 9));
        let reparsed = NetFaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(reparsed, plan);
        assert_eq!(NetFaultPlan::parse("").unwrap(), NetFaultPlan::none());
        assert!(NetFaultPlan::none().is_null());
    }

    #[test]
    fn plan_parse_rejects_malformed() {
        for bad in [
            "drop",
            "drop:2.0",
            "drop:-0.1",
            "drop:x",
            "delay:0.5",
            "delay:0.5=0",
            "silent:1",
            "silent:x@2",
            "frob:0.1",
        ] {
            assert!(NetFaultPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn fault_draws_are_deterministic_and_rate_shaped() {
        let plan = NetFaultPlan {
            drop: 0.25,
            seed: 7,
            ..NetFaultPlan::none()
        };
        let hits: usize = (0..4000).filter(|&seq| plan.drops(0, 1, seq, 1)).count();
        // Deterministic and near the nominal rate.
        assert_eq!(
            hits,
            (0..4000).filter(|&seq| plan.drops(0, 1, seq, 1)).count()
        );
        assert!((800..1200).contains(&hits), "drop rate off: {hits}/4000");
        // Retransmits re-roll independently of the first attempt.
        assert!((0..4000).any(|seq| plan.drops(0, 1, seq, 1) != plan.drops(0, 1, seq, 2)));
    }

    #[test]
    fn emulated_net_drop_and_delay() {
        let plan = NetFaultPlan {
            drop: 1.0,
            ..NetFaultPlan::none()
        };
        let mut net = EmulatedNet::new(2, plan, CostModel::default());
        let frame = encode_msg(0, &sample_payloads()[0]);
        net.send(0, 0, 1, 0, 1, &frame);
        assert_eq!(net.totals.dropped, 1);
        assert!(net.collect(0, 1).is_empty());
        assert_eq!(net.totals.bytes, frame.len() as u64);
        assert!(net.totals.comm_cost > 0.0);

        let plan = NetFaultPlan {
            delay: 1.0,
            delay_rounds: 2,
            ..NetFaultPlan::none()
        };
        let mut net = EmulatedNet::new(2, plan, CostModel::default());
        net.send(0, 0, 1, 0, 1, &frame);
        assert!(net.collect(0, 1).is_empty());
        assert!(net.collect(1, 1).is_empty());
        let late = net.collect(2, 1);
        assert_eq!(late.len(), 1);
        assert!(net.quiescent());
    }

    #[test]
    fn emulated_net_corruption_is_always_detected() {
        let plan = NetFaultPlan {
            corrupt: 1.0,
            seed: 3,
            ..NetFaultPlan::none()
        };
        let mut net = EmulatedNet::new(2, plan, CostModel::default());
        for seq in 0..50 {
            let frame = encode_msg(seq, &sample_payloads()[(seq % 5) as usize]);
            net.send(0, 0, 1, seq, 1, &frame);
        }
        let arrivals = net.collect(0, 1);
        assert_eq!(arrivals.len(), 50);
        for (_, frame) in arrivals {
            assert!(decode_msg(&frame).is_err(), "corrupted frame decoded");
        }
        assert_eq!(net.totals.corrupted, 50);
    }

    #[test]
    fn peer_tracker_orders_and_dedups() {
        let mut t = PeerTracker::default();
        assert_eq!(t.offer(0), Offer::Apply);
        assert_eq!(t.offer(0), Offer::Duplicate);
        assert_eq!(t.offer(2), Offer::Future);
        assert_eq!(t.offer(1), Offer::Apply);
        assert_eq!(t.offer(2), Offer::Apply);
        t.skip_to(10);
        assert_eq!(t.offer(9), Offer::Duplicate);
        assert_eq!(t.offer(10), Offer::Apply);
    }

    #[test]
    fn digest_tracks_state_and_catches_corruption() {
        use hsbp_graph::Graph;
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1], 2);
        let same = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1], 2);
        assert_eq!(blockmodel_digest(&bm), blockmodel_digest(&same));
        let other = Blockmodel::from_assignment(&g, vec![0, 1, 1, 0], 2);
        assert_ne!(blockmodel_digest(&bm), blockmodel_digest(&other));
        let mut corrupted = bm.clone();
        assert!(corrupted.inject_state_corruption(12));
        assert_ne!(blockmodel_digest(&bm), blockmodel_digest(&corrupted));
    }
}
