//! Vertex partitioning: split a graph into `k` shards with translation
//! tables and cut-edge accounting.
//!
//! The partition decides how much structure the per-shard runs can see:
//! every cut (inter-shard) edge is invisible to them and can only be
//! exploited later, by the stitch phase's full-graph finetune. Strategies:
//!
//! * [`PartitionStrategy::RoundRobin`] — vertex `v` to shard `v mod k`.
//!   Balanced vertex counts, oblivious to structure (worst cut).
//! * [`PartitionStrategy::DegreeBalanced`] — greedy longest-processing-time
//!   bin packing on vertex degree: vertices in decreasing-degree order,
//!   each to the shard with the least accumulated degree. Balances *work*
//!   (SBP cost scales with incident edges), not just vertex counts.
//! * [`PartitionStrategy::FromParts`] — an externally computed partition,
//!   e.g. read from a METIS `.part.K` file via
//!   [`hsbp_graph::partition::read_partition_file`]; a min-cut tool like
//!   `gpmetis` gives the sharded pipeline its best accuracy.

use hsbp_graph::{induced_subgraph, Graph, Vertex};

/// How vertices are assigned to shards.
#[derive(Debug, Clone)]
pub enum PartitionStrategy {
    /// Vertex `v` to shard `v % k`.
    RoundRobin,
    /// Greedy degree-balancing (decreasing-degree LPT).
    DegreeBalanced,
    /// Externally supplied per-vertex part ids (sparse ids are compacted;
    /// the part count overrides `ShardConfig::num_shards`).
    FromParts(Vec<u32>),
}

/// One shard: its induced subgraph and the local→global vertex table.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Induced subgraph over this shard's vertices (intra-shard edges only).
    pub graph: Graph,
    /// Local vertex id → global vertex id.
    pub to_global: Vec<Vertex>,
}

/// A complete partition of a graph into shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The shards, indexed by shard id.
    pub shards: Vec<Shard>,
    /// Global vertex id → shard id.
    pub parts: Vec<u32>,
    /// Global vertex id → local id within its shard.
    pub local_ids: Vec<Vertex>,
    /// Directed edges whose endpoints lie in different shards.
    pub cut_edges: usize,
    /// Total weight of those cut edges.
    pub cut_weight: u64,
    /// Directed edges in the input graph.
    pub total_edges: usize,
}

impl ShardPlan {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Fraction of directed edges crossing shards (0 for an edgeless
    /// graph). This is the accuracy-loss proxy: the per-shard runs never
    /// see these edges.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }

    /// Translate a local vertex of `shard` back to its global id.
    pub fn to_global(&self, shard: usize, local: Vertex) -> Vertex {
        self.shards[shard].to_global[local as usize]
    }

    /// Translate a global vertex to `(shard, local)`.
    pub fn to_local(&self, global: Vertex) -> (usize, Vertex) {
        (
            self.parts[global as usize] as usize,
            self.local_ids[global as usize],
        )
    }
}

/// Per-vertex shard ids under `strategy` (`k` ignored by `FromParts`).
fn assign_parts(graph: &Graph, k: usize, strategy: &PartitionStrategy) -> Vec<u32> {
    let n = graph.num_vertices();
    match strategy {
        PartitionStrategy::RoundRobin => (0..n).map(|v| (v % k) as u32).collect(),
        PartitionStrategy::DegreeBalanced => {
            let mut order: Vec<Vertex> = (0..n as Vertex).collect();
            order.sort_by_key(|&v| std::cmp::Reverse((graph.degree(v), v)));
            let mut load = vec![0u64; k];
            let mut parts = vec![0u32; n];
            for v in order {
                // k >= 1 (asserted by partition_graph), so min always exists.
                let lightest = (0..k).min_by_key(|&s| (load[s], s)).unwrap_or(0);
                parts[v as usize] = lightest as u32;
                // +1 so zero-degree vertices still spread across shards.
                load[lightest] += graph.degree(v) + 1;
            }
            parts
        }
        PartitionStrategy::FromParts(parts) => {
            assert_eq!(
                parts.len(),
                n,
                "partition file covers {} vertices, graph has {n}",
                parts.len()
            );
            // Compact sparse part ids to dense shard indices 0..k.
            let max = parts.iter().copied().max().map_or(0, |m| m as usize);
            let mut dense = vec![u32::MAX; max + 1];
            let mut next = 0u32;
            let mut out = Vec::with_capacity(n);
            for &p in parts {
                if dense[p as usize] == u32::MAX {
                    dense[p as usize] = next;
                    next += 1;
                }
                out.push(dense[p as usize]);
            }
            out
        }
    }
}

/// Partition `graph` into (at most) `num_shards` shards.
///
/// Builds each shard's induced subgraph, the two-way vertex translation
/// tables and the cut-edge account. Shards may be empty when
/// `num_shards > n`; empty shards are kept so shard indices line up with
/// part ids.
///
/// # Panics
/// Panics if `num_shards == 0`, or if a [`PartitionStrategy::FromParts`]
/// vector does not cover every vertex.
pub fn partition_graph(
    graph: &Graph,
    num_shards: usize,
    strategy: &PartitionStrategy,
) -> ShardPlan {
    assert!(num_shards >= 1, "num_shards must be at least 1");
    let n = graph.num_vertices();
    let parts = assign_parts(graph, num_shards, strategy);
    let k = match strategy {
        PartitionStrategy::FromParts(_) => {
            parts.iter().copied().max().map_or(1, |m| m as usize + 1)
        }
        _ => num_shards,
    };

    // Induced subgraph + local ids per shard.
    let mut shards = Vec::with_capacity(k);
    let mut local_ids = vec![0 as Vertex; n];
    for s in 0..k {
        let keep: Vec<bool> = parts.iter().map(|&p| p as usize == s).collect();
        let (sub, mapping) = induced_subgraph(graph, &keep);
        let mut to_global = vec![0 as Vertex; sub.num_vertices()];
        for (global, local) in mapping.iter().enumerate() {
            if let Some(local) = local {
                local_ids[global] = *local;
                to_global[*local as usize] = global as Vertex;
            }
        }
        shards.push(Shard {
            graph: sub,
            to_global,
        });
    }

    // Cut accounting.
    let mut cut_edges = 0usize;
    let mut cut_weight = 0u64;
    for (u, v, w) in graph.edges() {
        if parts[u as usize] != parts[v as usize] {
            cut_edges += 1;
            cut_weight += w;
        }
    }

    ShardPlan {
        shards,
        parts,
        local_ids,
        cut_edges,
        cut_weight,
        total_edges: graph.num_edges(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(Vertex, Vertex)> = (0..n)
            .map(|v| (v as Vertex, ((v + 1) % n) as Vertex))
            .collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn round_robin_balances_vertices() {
        let plan = partition_graph(&ring(10), 3, &PartitionStrategy::RoundRobin);
        let sizes: Vec<usize> = plan.shards.iter().map(|s| s.graph.num_vertices()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(plan.parts[7], 1);
    }

    #[test]
    fn degree_balanced_spreads_load() {
        // A star: the hub must not share a shard with all the leaves.
        let mut edges = Vec::new();
        for v in 1..9 {
            edges.push((0 as Vertex, v as Vertex));
        }
        let g = Graph::from_edges(9, &edges);
        let plan = partition_graph(&g, 2, &PartitionStrategy::DegreeBalanced);
        let hub = plan.parts[0] as usize;
        // Accumulated degree must end near-balanced: the hub (degree 8)
        // weighs as much as all leaves together, so the non-hub shard gets
        // most of the leaves.
        let loads: Vec<u64> = (0..2)
            .map(|s| {
                (0..9u32)
                    .filter(|&v| plan.parts[v as usize] as usize == s)
                    .map(|v| g.degree(v) + 1)
                    .sum()
            })
            .collect();
        assert!(loads[0].abs_diff(loads[1]) <= 4, "loads {loads:?}");
        assert!(plan.shards[1 - hub].graph.num_vertices() >= 4);
    }

    #[test]
    fn from_parts_compacts_sparse_ids() {
        let g = ring(4);
        let plan = partition_graph(&g, 99, &PartitionStrategy::FromParts(vec![7, 7, 2, 9]));
        assert_eq!(plan.num_shards(), 3);
        assert_eq!(plan.parts, vec![0, 0, 1, 2]);
    }

    #[test]
    fn translation_tables_are_inverse() {
        let plan = partition_graph(&ring(17), 4, &PartitionStrategy::DegreeBalanced);
        for v in 0..17u32 {
            let (s, local) = plan.to_local(v);
            assert_eq!(plan.to_global(s, local), v);
        }
        let total: usize = plan.shards.iter().map(|s| s.graph.num_vertices()).sum();
        assert_eq!(total, 17);
    }

    #[test]
    fn cut_accounting_matches_ring() {
        // Ring of 10 round-robined over 5 shards: every edge is cut.
        let plan = partition_graph(&ring(10), 5, &PartitionStrategy::RoundRobin);
        assert_eq!(plan.cut_edges, 10);
        assert!((plan.cut_fraction() - 1.0).abs() < 1e-12);
        // One shard: nothing is cut.
        let plan = partition_graph(&ring(10), 1, &PartitionStrategy::RoundRobin);
        assert_eq!(plan.cut_edges, 0);
        assert_eq!(plan.cut_fraction(), 0.0);
    }

    #[test]
    fn empty_shards_allowed() {
        let plan = partition_graph(&ring(3), 5, &PartitionStrategy::RoundRobin);
        assert_eq!(plan.num_shards(), 5);
        assert_eq!(plan.shards[4].graph.num_vertices(), 0);
    }
}
