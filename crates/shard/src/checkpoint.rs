//! Driver-level checkpoint/resume for sharded runs.
//!
//! A checkpoint is a plain-text run directory:
//!
//! ```text
//! run-dir/
//!   meta.txt       header: graph fingerprint + run parameters
//!   parts.txt      the partition plan, one shard id per vertex line
//!   shard_<s>.ckpt one file per *completed* shard (written as each lands)
//! ```
//!
//! `meta.txt` pins the run identity — vertex/edge counts, total edge
//! weight, seed, shard count, and a partition-strategy tag. Resume refuses
//! directories whose identity does not match the live `(graph, config)`,
//! and re-reads `parts.txt` to make sure the plan is the same one the
//! completed shards were cut from. Shard files round-trip the membership
//! vector, block count, MDL, and cost account of one [`SbpResult`]; the
//! per-shard `RunStats` instrumentation is *not* persisted (a resumed run
//! reports timing only for the shards it actually re-ran — the stitched
//! partition and MDL are unaffected).
//!
//! Files are written to a temporary name and renamed into place, so a kill
//! mid-write never leaves a torn shard file behind.

use crate::runner::CostBasis;
use crate::{PartitionStrategy, ShardConfig};
use hsbp_core::{HsbpError, RunStats, SbpResult};
use hsbp_graph::partition::{read_partition_file, write_partition_file};
use hsbp_graph::Graph;
use std::io::Write;
use std::path::{Path, PathBuf};

const META_FILE: &str = "meta.txt";
const PARTS_FILE: &str = "parts.txt";
const FORMAT_HEADER: &str = "hsbp-shard-checkpoint v1";

/// One shard result loaded back from a checkpoint directory.
#[derive(Debug)]
pub struct LoadedShard {
    /// The reconstructed result (fresh, empty `RunStats`).
    pub result: SbpResult,
    /// The shard's recorded serial cost.
    pub cost: f64,
    /// Which account the cost came from.
    pub basis: CostBasis,
    /// Attempts the original run needed for this shard.
    pub attempts: usize,
}

/// A sharded-run checkpoint directory (see module docs for the layout).
#[derive(Debug)]
pub struct Checkpoint {
    dir: PathBuf,
}

fn ckpt_err(path: &Path, message: impl Into<String>) -> HsbpError {
    HsbpError::Checkpoint {
        path: path.display().to_string(),
        message: message.into(),
    }
}

/// Stable tag for the partition strategy, stored in `meta.txt`. External
/// partitions are fingerprinted (FNV-1a over the part ids) rather than
/// inlined — `parts.txt` holds the full plan either way.
fn strategy_tag(strategy: &PartitionStrategy) -> String {
    match strategy {
        PartitionStrategy::RoundRobin => "round-robin".to_string(),
        PartitionStrategy::DegreeBalanced => "degree-balanced".to_string(),
        PartitionStrategy::FromParts(parts) => {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for &p in parts {
                hash ^= u64::from(p);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            format!("from-parts:{hash:016x}")
        }
    }
}

/// Write `content` to `path` via a temporary sibling + rename, so readers
/// never observe a half-written file.
fn write_atomic(path: &Path, content: &str) -> Result<(), HsbpError> {
    let tmp = path.with_extension("tmp");
    let mut file =
        std::fs::File::create(&tmp).map_err(|e| ckpt_err(&tmp, format!("create: {e}")))?;
    file.write_all(content.as_bytes())
        .and_then(|()| file.sync_all())
        .map_err(|e| ckpt_err(&tmp, format!("write: {e}")))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| ckpt_err(path, format!("rename: {e}")))
}

fn meta_content(graph: &Graph, cfg: &ShardConfig) -> String {
    format!(
        "{FORMAT_HEADER}\n\
         graph {} {} {}\n\
         seed {}\n\
         shards {}\n\
         strategy {}\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.total_weight(),
        cfg.sbp.seed,
        cfg.num_shards,
        strategy_tag(&cfg.strategy),
    )
}

impl Checkpoint {
    /// Open `dir` as a checkpoint for `(graph, cfg, parts)`, creating and
    /// initialising it when empty or absent. An existing directory must
    /// carry a matching `meta.txt` and an identical `parts.txt`; anything
    /// else is a [`HsbpError::Checkpoint`].
    pub fn open_or_create(
        dir: impl Into<PathBuf>,
        graph: &Graph,
        cfg: &ShardConfig,
        parts: &[u32],
    ) -> Result<Self, HsbpError> {
        let dir = dir.into();
        let meta_path = dir.join(META_FILE);
        let parts_path = dir.join(PARTS_FILE);
        let expected_meta = meta_content(graph, cfg);

        if meta_path.exists() {
            let found = std::fs::read_to_string(&meta_path)
                .map_err(|e| ckpt_err(&meta_path, format!("read: {e}")))?;
            if found != expected_meta {
                return Err(ckpt_err(
                    &meta_path,
                    "run identity mismatch (different graph, seed, shard count, \
                     or partition strategy); refusing to resume",
                ));
            }
            let stored = read_partition_file(&parts_path)
                .map_err(|e| ckpt_err(&parts_path, format!("read: {e}")))?;
            if stored != parts {
                return Err(ckpt_err(
                    &parts_path,
                    "stored partition plan differs from the live plan",
                ));
            }
        } else {
            std::fs::create_dir_all(&dir).map_err(|e| ckpt_err(&dir, format!("create: {e}")))?;
            write_partition_file(parts, &parts_path)
                .map_err(|e| ckpt_err(&parts_path, format!("write: {e}")))?;
            // Meta is written last: its presence marks an initialised
            // directory.
            write_atomic(&meta_path, &expected_meta)?;
        }
        Ok(Self { dir })
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard_{shard}.ckpt"))
    }

    /// Persist one completed shard. Called by the supervisor as each shard
    /// lands, so a later kill only loses in-flight shards.
    pub fn save_shard(
        &self,
        shard: usize,
        result: &SbpResult,
        cost: f64,
        basis: CostBasis,
        attempts: usize,
    ) -> Result<(), HsbpError> {
        let basis_tag = match basis {
            CostBasis::Simulated => "sim",
            CostBasis::WallClock => "wall",
            CostBasis::Missing => "missing",
        };
        let assignment = result
            .assignment
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        // `{:?}` prints the shortest f64 representation that round-trips.
        let content = format!(
            "shard {shard} blocks {} attempts {attempts}\n\
             cost {:?} {basis_tag}\n\
             mdl {:?} {:?} {:?} {:?}\n\
             assignment {assignment}\n",
            result.num_blocks,
            cost,
            result.mdl.log_likelihood,
            result.mdl.model_complexity,
            result.mdl.total,
            result.normalized_mdl,
        );
        write_atomic(&self.shard_path(shard), &content)
    }

    /// Load shard `shard` if its checkpoint file exists. `expected_n` is
    /// the shard subgraph's vertex count; a stored membership vector of any
    /// other length fails. `cfg` seeds the fresh (empty) `RunStats`.
    pub fn load_shard(
        &self,
        shard: usize,
        expected_n: usize,
        cfg: &ShardConfig,
    ) -> Result<Option<LoadedShard>, HsbpError> {
        let path = self.shard_path(shard);
        if !path.exists() {
            return Ok(None);
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| ckpt_err(&path, format!("read: {e}")))?;
        let parse = |what: &str| ckpt_err(&path, format!("malformed shard file: {what}"));

        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| parse("missing header"))?;
        let mut h = header.split_whitespace();
        let expect_kv =
            |key: &str, it: &mut std::str::SplitWhitespace<'_>| -> Result<String, HsbpError> {
                match (it.next(), it.next()) {
                    (Some(k), Some(v)) if k == key => Ok(v.to_string()),
                    _ => Err(parse(&format!("expected `{key} <value>`"))),
                }
            };
        let stored_shard: usize = expect_kv("shard", &mut h)?
            .parse()
            .map_err(|_| parse("bad shard index"))?;
        if stored_shard != shard {
            return Err(parse(&format!(
                "file for shard {stored_shard} stored under shard {shard}"
            )));
        }
        let num_blocks: usize = expect_kv("blocks", &mut h)?
            .parse()
            .map_err(|_| parse("bad block count"))?;
        let attempts: usize = expect_kv("attempts", &mut h)?
            .parse()
            .map_err(|_| parse("bad attempt count"))?;

        let cost_line = lines.next().ok_or_else(|| parse("missing cost line"))?;
        let mut c = cost_line.split_whitespace();
        let cost: f64 = expect_kv("cost", &mut c)?
            .parse()
            .map_err(|_| parse("bad cost"))?;
        let basis = match c.next() {
            Some("sim") => CostBasis::Simulated,
            Some("wall") => CostBasis::WallClock,
            Some("missing") => CostBasis::Missing,
            _ => return Err(parse("bad cost basis")),
        };

        let mdl_line = lines.next().ok_or_else(|| parse("missing mdl line"))?;
        let mut m = mdl_line.split_whitespace();
        if m.next() != Some("mdl") {
            return Err(parse("expected `mdl` line"));
        }
        let mut next_f64 = |what: &str| -> Result<f64, HsbpError> {
            m.next()
                .ok_or_else(|| parse(what))?
                .parse()
                .map_err(|_| parse(what))
        };
        let ll = next_f64("bad mdl log-likelihood")?;
        let mc = next_f64("bad mdl model-complexity")?;
        let total = next_f64("bad mdl total")?;
        let normalized = next_f64("bad normalized mdl")?;

        let assign_line = lines.next().ok_or_else(|| parse("missing assignment"))?;
        let mut a = assign_line.split_whitespace();
        if a.next() != Some("assignment") {
            return Err(parse("expected `assignment` line"));
        }
        let mut assignment = Vec::with_capacity(expected_n);
        for tok in a {
            let b: u32 = tok.parse().map_err(|_| parse("bad block id"))?;
            assignment.push(b);
        }
        if assignment.len() != expected_n {
            return Err(parse(&format!(
                "assignment covers {} vertices, shard has {expected_n}",
                assignment.len()
            )));
        }
        if expected_n > 0 && (num_blocks == 0 || num_blocks > expected_n) {
            return Err(parse(&format!(
                "block count {num_blocks} outside 1..={expected_n}"
            )));
        }
        if assignment.iter().any(|&b| b as usize >= num_blocks.max(1)) && expected_n > 0 {
            return Err(parse("block id out of range"));
        }

        let result = SbpResult {
            assignment,
            num_blocks,
            mdl: hsbp_blockmodel::mdl::Mdl {
                log_likelihood: ll,
                model_complexity: mc,
                total,
            },
            normalized_mdl: normalized,
            trajectory: Vec::new(),
            stats: RunStats::new(&cfg.sbp),
        };
        Ok(Some(LoadedShard {
            result,
            cost,
            basis,
            attempts,
        }))
    }

    /// Shard indices with a completed checkpoint file on disk.
    pub fn completed_shards(&self, num_shards: usize) -> Vec<usize> {
        (0..num_shards)
            .filter(|&s| self.shard_path(s).exists())
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::partition::partition_graph;
    use hsbp_graph::Vertex;

    fn tiny_graph() -> Graph {
        let edges: Vec<(Vertex, Vertex)> =
            vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)];
        Graph::from_edges(6, &edges)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsbp-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_files_roundtrip() {
        let g = tiny_graph();
        let cfg = ShardConfig {
            num_shards: 2,
            ..Default::default()
        };
        let plan = partition_graph(&g, 2, &cfg.strategy);
        let dir = tmpdir("roundtrip");
        let ckpt = Checkpoint::open_or_create(&dir, &g, &cfg, &plan.parts).unwrap();
        assert!(ckpt.load_shard(0, 3, &cfg).unwrap().is_none());

        let (results, scaling) = crate::runner::run_shards(&plan, &cfg);
        ckpt.save_shard(
            0,
            &results[0],
            scaling.per_shard_cost[0],
            scaling.per_shard_basis[0],
            2,
        )
        .unwrap();
        let loaded = ckpt
            .load_shard(0, plan.shards[0].graph.num_vertices(), &cfg)
            .unwrap()
            .expect("saved shard loads");
        assert_eq!(loaded.result.assignment, results[0].assignment);
        assert_eq!(loaded.result.num_blocks, results[0].num_blocks);
        assert_eq!(loaded.result.mdl.total, results[0].mdl.total);
        assert_eq!(loaded.cost, scaling.per_shard_cost[0]);
        assert_eq!(loaded.basis, scaling.per_shard_basis[0]);
        assert_eq!(loaded.attempts, 2);
        assert_eq!(ckpt.completed_shards(2), vec![0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_identity_is_refused() {
        let g = tiny_graph();
        let cfg = ShardConfig {
            num_shards: 2,
            ..Default::default()
        };
        let plan = partition_graph(&g, 2, &cfg.strategy);
        let dir = tmpdir("identity");
        Checkpoint::open_or_create(&dir, &g, &cfg, &plan.parts).unwrap();

        let mut other = cfg.clone();
        other.sbp.seed = cfg.sbp.seed.wrapping_add(1);
        match Checkpoint::open_or_create(&dir, &g, &other, &plan.parts) {
            Err(HsbpError::Checkpoint { .. }) => {}
            other => panic!("expected checkpoint mismatch, got {other:?}"),
        }
        // Same identity reopens fine.
        Checkpoint::open_or_create(&dir, &g, &cfg, &plan.parts).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_shard_file_is_rejected() {
        let g = tiny_graph();
        let cfg = ShardConfig {
            num_shards: 2,
            ..Default::default()
        };
        let plan = partition_graph(&g, 2, &cfg.strategy);
        let dir = tmpdir("torn");
        let ckpt = Checkpoint::open_or_create(&dir, &g, &cfg, &plan.parts).unwrap();
        std::fs::write(dir.join("shard_1.ckpt"), "shard 1 blocks").unwrap();
        assert!(matches!(
            ckpt.load_shard(1, 3, &cfg),
            Err(HsbpError::Checkpoint { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
