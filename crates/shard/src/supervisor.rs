//! Shard supervision: retries, deadlines, invariant validation, and
//! per-shard outcome accounting around the bare [`crate::runner`] jobs.
//!
//! PR 1's runner fired every shard as a bare rayon job — one panicking or
//! hung shard aborted the whole divide-and-conquer run. Real distributed
//! SBP deployments lose ranks mid-phase (Wanye et al., arXiv:2305.18663),
//! and the divide-and-conquer stitch only needs *surviving* sub-models plus
//! the full edge set (Roy & Atchadé, arXiv:1610.09724), so the supervisor
//! turns shard failures into policy instead of aborts:
//!
//! * every attempt runs under [`std::panic::catch_unwind`], and — when a
//!   `shard_timeout` is set — under a **cooperative wall-clock deadline**
//!   ([`hsbp_core::RunBudget`]): an attempt that overruns stops itself at
//!   the next cancellation checkpoint and surfaces as a truncated result
//!   instead of hogging the rank;
//! * a completed attempt is checked against the **deadline** (the simulated
//!   cost account, falling back to wall clock — straggler detection) and a
//!   **post-shard invariant validator** (membership bounds, block counts,
//!   edge conservation — the last line of defence against corrupt results);
//! * failed attempts retry with exponential backoff and a reseeded
//!   splitmix stream per attempt, up to [`SupervisorConfig::max_retries`];
//! * a shard that exhausts its budget is **dropped**: the stitch phase
//!   degrades gracefully by majority-voting its vertices onto surviving
//!   shards' blocks over the cut edges (see [`crate::stitch`]).
//!
//! Attempt 1 uses the exact seed of the unsupervised path, so zero-fault
//! supervised runs are bit-identical to [`crate::runner::run_shards`].

use crate::checkpoint::Checkpoint;
use crate::faults::{corrupt_result, FaultKind};
use crate::partition::ShardPlan;
use crate::runner::{
    mix, scaling_from_costs, shard_cost, shard_sbp_config, CostBasis, EmulatedScaling,
};
use crate::ShardConfig;
use hsbp_blockmodel::Blockmodel;
use hsbp_core::{run_sbp_budgeted, CancelToken, HsbpError, RunBudget, SbpResult};
use hsbp_graph::Graph;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;
use std::time::{Duration, Instant};

/// Supervision policy of a sharded run.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Retries after the first attempt before a shard is dropped
    /// (`max_retries = 2` means up to 3 attempts).
    pub max_retries: usize,
    /// Per-attempt deadline. Checked against the shard's simulated cost
    /// account (abstract units) when it tracks one thread, its wall-clock
    /// seconds otherwise — and always against wall clock, both as a
    /// post-hoc straggler check *and* as a cooperative in-run deadline
    /// (the attempt's [`hsbp_core::RunBudget`]), so a genuinely slow host
    /// stops itself instead of running to completion. `None` disables
    /// straggler detection.
    pub shard_timeout: Option<f64>,
    /// Base of the exponential backoff before retry `k`, in milliseconds:
    /// `backoff_base_ms << (k - 1)`. 0 (the default) records the schedule
    /// in the outcome without sleeping — right for emulated ranks.
    pub backoff_base_ms: u64,
    /// Deterministic fault injection schedule (empty in production).
    pub fault_plan: crate::faults::FaultPlan,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_retries: 2,
            shard_timeout: None,
            backoff_base_ms: 0,
            fault_plan: crate::faults::FaultPlan::none(),
        }
    }
}

impl SupervisorConfig {
    /// Validate invariants; called via [`ShardConfig::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if let Some(t) = self.shard_timeout {
            if !t.is_finite() || t <= 0.0 {
                return Err("shard_timeout must be finite and positive".into());
            }
        }
        Ok(())
    }
}

/// Why one shard attempt failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// The attempt panicked; the payload message is preserved.
    Panic(String),
    /// The attempt finished but blew its deadline.
    Straggler {
        /// Observed cost (simulated units or wall seconds; see
        /// [`CostBasis`]).
        cost: f64,
        /// The configured budget it exceeded.
        budget: f64,
    },
    /// The result failed the post-shard invariant validator.
    Invalid(String),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic(msg) => write!(f, "panic: {msg}"),
            FailureKind::Straggler { cost, budget } => {
                write!(f, "straggler: cost {cost:.3} exceeded budget {budget:.3}")
            }
            FailureKind::Invalid(msg) => write!(f, "invalid result: {msg}"),
        }
    }
}

/// One failed attempt, as recorded in a [`ShardOutcome`].
#[derive(Debug, Clone)]
pub struct AttemptFailure {
    /// 1-based attempt number.
    pub attempt: usize,
    /// What went wrong.
    pub kind: FailureKind,
    /// Backoff scheduled before the next attempt (0 after the last).
    pub backoff_ms: u64,
}

/// Terminal state of one shard under supervision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// First attempt succeeded.
    Ok,
    /// Succeeded after at least one failed attempt.
    Recovered,
    /// Exhausted its retry budget; its vertices will be reassigned to
    /// surviving shards during the stitch.
    Dropped,
    /// Loaded from a checkpoint directory; not re-run.
    Resumed,
}

/// Everything the supervisor observed about one shard.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: usize,
    /// Attempts executed in this process (0 when resumed from checkpoint).
    pub attempts: usize,
    /// Every failed attempt, in order.
    pub failures: Vec<AttemptFailure>,
    /// How the shard ended up.
    pub status: ShardStatus,
}

impl ShardOutcome {
    /// True when the shard contributed a usable result.
    pub fn survived(&self) -> bool {
        self.status != ShardStatus::Dropped
    }
}

/// Results of the supervised per-shard phase.
#[derive(Debug)]
pub struct SupervisedShards {
    /// Per-shard result; `None` for dropped shards.
    pub results: Vec<Option<SbpResult>>,
    /// Per-shard supervision record (same order).
    pub outcomes: Vec<ShardOutcome>,
    /// Emulated rank scaling over the *surviving* shards' costs.
    pub scaling: EmulatedScaling,
}

/// Payload type of injected panics, so the quiet panic hook can tell them
/// apart from real bugs.
struct InjectedPanic {
    message: String,
}

/// Install (once) a panic hook that swallows *injected* panics — they are
/// expected control flow under fault injection — while real panics keep the
/// default backtrace behaviour.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Render a caught panic payload as a message.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(injected) = payload.downcast_ref::<InjectedPanic>() {
        injected.message.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Post-shard invariant validator: the supervisor's defence against
/// corrupted results (injected or real). Checks
///
/// 1. **membership bounds** — one block id per vertex, every id `< num_blocks`;
/// 2. **block counts** — `1 ≤ num_blocks ≤ n` on non-empty shards, 0 on
///    empty ones;
/// 3. **edge conservation** — the blockmodel implied by the assignment
///    accounts for every directed edge weight of the shard's subgraph.
pub fn validate_shard_result(graph: &Graph, result: &SbpResult) -> Result<(), String> {
    let n = graph.num_vertices();
    if result.assignment.len() != n {
        return Err(format!(
            "membership vector covers {} vertices, shard has {n}",
            result.assignment.len()
        ));
    }
    if n == 0 {
        if result.num_blocks != 0 {
            return Err(format!(
                "empty shard reports {} block(s)",
                result.num_blocks
            ));
        }
        return Ok(());
    }
    if result.num_blocks == 0 || result.num_blocks > n {
        return Err(format!("block count {} outside 1..={n}", result.num_blocks));
    }
    for (v, &b) in result.assignment.iter().enumerate() {
        if b as usize >= result.num_blocks {
            return Err(format!(
                "vertex {v} assigned to block {b}, but only {} block(s) exist",
                result.num_blocks
            ));
        }
    }
    if !result.mdl.total.is_finite() {
        return Err(format!("non-finite MDL {}", result.mdl.total));
    }
    let bm = Blockmodel::from_assignment(graph, result.assignment.clone(), result.num_blocks);
    let modeled: u64 = (0..result.num_blocks).map(|r| bm.d_out(r as u32)).sum();
    if modeled != graph.total_weight() {
        return Err(format!(
            "blockmodel accounts for edge weight {modeled}, shard graph has {}",
            graph.total_weight()
        ));
    }
    Ok(())
}

/// One supervised shard: the attempt loop described in the module docs.
/// Returns the result (with its cost account) or `None` when dropped, plus
/// the outcome record either way.
fn supervise_shard(
    plan: &ShardPlan,
    cfg: &ShardConfig,
    shard: usize,
) -> (Option<(SbpResult, f64, CostBasis)>, ShardOutcome) {
    let sup = &cfg.supervision;
    let graph = &plan.shards[shard].graph;
    let max_attempts = sup.max_retries + 1;
    let mut failures: Vec<AttemptFailure> = Vec::new();

    for attempt in 1..=max_attempts {
        let shard_cfg = shard_sbp_config(plan, cfg, shard, attempt);
        let fault = sup.fault_plan.fault_for(shard, attempt);
        // Cooperative wall-clock deadline: instead of only judging a shard
        // *after* it finishes (PR 2), hand the timeout to the run itself so
        // a genuinely slow attempt stops at the next cancellation checkpoint
        // and comes back truncated rather than hogging the rank. Simulated
        // cost is still judged post-hoc below — it is only known at the end.
        let budget = match sup.shard_timeout {
            Some(secs) => RunBudget::unlimited().with_deadline(Duration::from_secs_f64(secs)),
            None => RunBudget::unlimited(),
        };
        let token = CancelToken::new();
        let started = Instant::now();
        let run = catch_unwind(AssertUnwindSafe(|| {
            if matches!(fault, Some(FaultKind::Panic)) {
                std::panic::panic_any(InjectedPanic {
                    message: format!("injected panic (shard {shard}, attempt {attempt})"),
                });
            }
            run_sbp_budgeted(graph, &shard_cfg, &budget, &token)
        }));
        let wall_secs = started.elapsed().as_secs_f64();

        let failure = match run {
            Err(payload) => FailureKind::Panic(payload_message(payload.as_ref())),
            Ok(Err(e)) => FailureKind::Invalid(format!("run failed: {e}")),
            Ok(Ok(mut result)) => {
                if matches!(fault, Some(FaultKind::Corrupt)) {
                    corrupt_result(&mut result, mix(shard_cfg.seed, attempt as u64));
                }
                let (mut cost, basis) = shard_cost(&result);
                if let Some(FaultKind::Delay(secs)) = fault {
                    cost += secs;
                }
                let over_deadline = result.truncated()
                    || sup.shard_timeout.is_some_and(|budget| {
                        cost > budget || (basis == CostBasis::Simulated && wall_secs > budget)
                    });
                if over_deadline {
                    let budget = sup.shard_timeout.unwrap_or(f64::INFINITY);
                    FailureKind::Straggler {
                        cost: cost.max(wall_secs),
                        budget,
                    }
                } else {
                    match validate_shard_result(graph, &result) {
                        Err(msg) => FailureKind::Invalid(msg),
                        Ok(()) => {
                            let status = if failures.is_empty() {
                                ShardStatus::Ok
                            } else {
                                ShardStatus::Recovered
                            };
                            return (
                                Some((result, cost, basis)),
                                ShardOutcome {
                                    shard,
                                    attempts: attempt,
                                    failures,
                                    status,
                                },
                            );
                        }
                    }
                }
            }
        };

        let is_last = attempt == max_attempts;
        let backoff_ms = if is_last {
            0
        } else {
            // backoff_base_ms << (attempt - 1), saturating.
            sup.backoff_base_ms
                .saturating_mul(1u64 << (attempt as u32 - 1).min(63))
        };
        failures.push(AttemptFailure {
            attempt,
            kind: failure,
            backoff_ms,
        });
        if backoff_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
        }
    }

    let attempts = max_attempts;
    (
        None,
        ShardOutcome {
            shard,
            attempts,
            failures,
            status: ShardStatus::Dropped,
        },
    )
}

/// Run every shard of `plan` under supervision, resuming completed shards
/// from `checkpoint` when one is given and saving each newly completed
/// shard back to it.
///
/// Returns [`HsbpError::AllShardsFailed`] when no shard survives (there is
/// nothing to stitch or degrade onto); individual failures otherwise
/// degrade, recorded in the outcomes.
pub fn run_shards_supervised(
    plan: &ShardPlan,
    cfg: &ShardConfig,
    checkpoint: Option<&Checkpoint>,
) -> Result<SupervisedShards, HsbpError> {
    quiet_injected_panics();
    let k = plan.num_shards();

    // Resume whatever the checkpoint already holds.
    let mut resumed: Vec<Option<(SbpResult, f64, CostBasis, usize)>> = Vec::with_capacity(k);
    for shard in 0..k {
        let loaded = match checkpoint {
            Some(ckpt) => ckpt.load_shard(shard, plan.shards[shard].graph.num_vertices(), cfg)?,
            None => None,
        };
        resumed.push(loaded.map(|l| (l.result, l.cost, l.basis, l.attempts)));
    }

    let pending: Vec<usize> = (0..k).filter(|&s| resumed[s].is_none()).collect();
    let fresh: Vec<(usize, Result<_, HsbpError>)> = hsbp_parallel::global().map_vec(
        pending,
        || (),
        |(), shard| {
            let (success, outcome) = supervise_shard(plan, cfg, shard);
            if let (Some((result, cost, basis)), Some(ckpt)) = (&success, checkpoint) {
                if let Err(e) = ckpt.save_shard(shard, result, *cost, *basis, outcome.attempts) {
                    return (shard, Err(e));
                }
            }
            (shard, Ok((success, outcome)))
        },
    );

    let mut results: Vec<Option<SbpResult>> = (0..k).map(|_| None).collect();
    let mut outcomes: Vec<Option<ShardOutcome>> = (0..k).map(|_| None).collect();
    let mut costs = vec![0.0f64; k];
    let mut bases = vec![CostBasis::Missing; k];

    for (shard, slot) in resumed.into_iter().enumerate() {
        if let Some((result, cost, basis, _attempts)) = slot {
            results[shard] = Some(result);
            costs[shard] = cost;
            bases[shard] = basis;
            outcomes[shard] = Some(ShardOutcome {
                shard,
                attempts: 0,
                failures: Vec::new(),
                status: ShardStatus::Resumed,
            });
        }
    }
    for (shard, entry) in fresh {
        let (success, outcome) = entry?;
        if let Some((result, cost, basis)) = success {
            results[shard] = Some(result);
            costs[shard] = cost;
            bases[shard] = basis;
        }
        outcomes[shard] = Some(outcome);
    }
    let outcomes: Vec<ShardOutcome> = outcomes
        .into_iter()
        .enumerate()
        .map(|(shard, o)| match o {
            Some(o) => o,
            // Unreachable: every shard is either resumed or freshly run.
            None => ShardOutcome {
                shard,
                attempts: 0,
                failures: Vec::new(),
                status: ShardStatus::Dropped,
            },
        })
        .collect();

    if results.iter().all(Option::is_none) && k > 0 {
        return Err(HsbpError::AllShardsFailed { num_shards: k });
    }

    Ok(SupervisedShards {
        results,
        outcomes,
        scaling: scaling_from_costs(costs, bases),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::partition::{partition_graph, PartitionStrategy};
    use hsbp_graph::Vertex;

    fn two_cliques(size: usize) -> Graph {
        let mut edges = Vec::new();
        for base in [0, size] {
            for a in 0..size {
                for b in 0..size {
                    if a != b {
                        edges.push(((base + a) as Vertex, (base + b) as Vertex));
                    }
                }
            }
        }
        Graph::from_edges(2 * size, &edges)
    }

    fn cfg_with_plan(num_shards: usize, plan: FaultPlan) -> ShardConfig {
        ShardConfig {
            num_shards,
            supervision: SupervisorConfig {
                fault_plan: plan,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn zero_faults_match_unsupervised_bit_for_bit() {
        let g = two_cliques(8);
        let cfg = cfg_with_plan(2, FaultPlan::none());
        let plan = partition_graph(&g, 2, &PartitionStrategy::RoundRobin);
        let (plain, _) = crate::runner::run_shards(&plan, &cfg);
        let sup = run_shards_supervised(&plan, &cfg, None).unwrap();
        for (shard, (p, s)) in plain.iter().zip(&sup.results).enumerate() {
            let s = s.as_ref().expect("no shard dropped");
            assert_eq!(p.assignment, s.assignment, "shard {shard}");
            assert_eq!(p.num_blocks, s.num_blocks, "shard {shard}");
        }
        assert!(sup.outcomes.iter().all(|o| o.status == ShardStatus::Ok));
        assert!(!sup.scaling.mixed_basis());
    }

    #[test]
    fn transient_panic_recovers_with_retry() {
        let g = two_cliques(6);
        let cfg = cfg_with_plan(2, FaultPlan::none().panic_on(1, 1));
        let plan = partition_graph(&g, 2, &PartitionStrategy::RoundRobin);
        let sup = run_shards_supervised(&plan, &cfg, None).unwrap();
        assert!(sup.results[1].is_some());
        assert_eq!(sup.outcomes[1].status, ShardStatus::Recovered);
        assert_eq!(sup.outcomes[1].attempts, 2);
        assert_eq!(sup.outcomes[1].failures.len(), 1);
        assert!(matches!(
            sup.outcomes[1].failures[0].kind,
            FailureKind::Panic(_)
        ));
        assert_eq!(sup.outcomes[0].status, ShardStatus::Ok);
    }

    #[test]
    fn permanent_panic_drops_shard() {
        let g = two_cliques(6);
        let cfg = cfg_with_plan(2, FaultPlan::none().kill(0));
        let plan = partition_graph(&g, 2, &PartitionStrategy::RoundRobin);
        let sup = run_shards_supervised(&plan, &cfg, None).unwrap();
        assert!(sup.results[0].is_none());
        assert_eq!(sup.outcomes[0].status, ShardStatus::Dropped);
        assert_eq!(sup.outcomes[0].attempts, cfg.supervision.max_retries + 1);
        assert_eq!(sup.scaling.per_shard_basis[0], CostBasis::Missing);
        assert!(sup.results[1].is_some());
    }

    #[test]
    fn corrupt_results_caught_and_retried() {
        let g = two_cliques(6);
        let cfg = cfg_with_plan(2, FaultPlan::none().corrupt_on(0, 1));
        let plan = partition_graph(&g, 2, &PartitionStrategy::RoundRobin);
        let sup = run_shards_supervised(&plan, &cfg, None).unwrap();
        assert_eq!(sup.outcomes[0].status, ShardStatus::Recovered);
        assert!(matches!(
            sup.outcomes[0].failures[0].kind,
            FailureKind::Invalid(_)
        ));
        let result = sup.results[0].as_ref().unwrap();
        validate_shard_result(&plan.shards[0].graph, result).unwrap();
    }

    #[test]
    fn straggler_deadline_trips_on_injected_delay() {
        let g = two_cliques(6);
        let mut cfg = cfg_with_plan(2, FaultPlan::none().delay_on(0, 1, 1e9));
        cfg.supervision.shard_timeout = Some(1e6);
        let plan = partition_graph(&g, 2, &PartitionStrategy::RoundRobin);
        let sup = run_shards_supervised(&plan, &cfg, None).unwrap();
        assert_eq!(sup.outcomes[0].status, ShardStatus::Recovered);
        assert!(matches!(
            sup.outcomes[0].failures[0].kind,
            FailureKind::Straggler { .. }
        ));
    }

    #[test]
    fn all_shards_failing_is_an_error() {
        let g = two_cliques(4);
        let cfg = cfg_with_plan(2, FaultPlan::none().kill(0).kill(1));
        let plan = partition_graph(&g, 2, &PartitionStrategy::RoundRobin);
        match run_shards_supervised(&plan, &cfg, None) {
            Err(HsbpError::AllShardsFailed { num_shards }) => assert_eq!(num_shards, 2),
            other => panic!("expected AllShardsFailed, got {other:?}"),
        }
    }

    #[test]
    fn validator_rejects_corruptions() {
        let g = two_cliques(4);
        let cfg = ShardConfig::default();
        let plan = partition_graph(&g, 1, &PartitionStrategy::RoundRobin);
        let (mut results, _) = crate::runner::run_shards(&plan, &cfg);
        let mut r = results.remove(0);
        validate_shard_result(&g, &r).unwrap();
        let good = r.clone();
        r.assignment[0] = r.num_blocks as u32 + 3;
        assert!(validate_shard_result(&g, &r).is_err());
        r = good.clone();
        r.num_blocks = 0;
        assert!(validate_shard_result(&g, &r).is_err());
        r = good.clone();
        r.assignment.pop();
        assert!(validate_shard_result(&g, &r).is_err());
        r = good;
        r.mdl.total = f64::NAN;
        assert!(validate_shard_result(&g, &r).is_err());
    }
}
