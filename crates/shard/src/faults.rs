//! Deterministic fault injection for the shard supervisor.
//!
//! A [`FaultPlan`] maps `(shard, attempt)` pairs to injected faults, so
//! every failure path of the supervision layer — panic, straggler, corrupt
//! result — is reproducible in tests and from the CLI. Plans are pure data:
//! the same plan against the same `(graph, config)` produces the same run,
//! bit for bit.
//!
//! The CLI grammar (`--fault-plan`) is a comma-separated list of directives:
//!
//! ```text
//! panic:SHARD@ATTEMPT      panic on that attempt (1-based)
//! panic:SHARD@*            panic on every attempt (permanent failure)
//! delay:SHARD@ATTEMPT=SECS inflate the attempt's cost by SECS (straggler)
//! delay:SHARD@*=SECS       straggle on every attempt
//! corrupt:SHARD@ATTEMPT    return a corrupted membership vector
//! corrupt:SHARD@*          corrupt every attempt
//! ```
//!
//! e.g. `panic:0@1,panic:3@1` fails shards 0 and 3 on their first attempt
//! only (both recover via retry), while `panic:2@*` kills shard 2 for good.

use hsbp_core::SbpResult;

/// What a single injected fault does to one shard attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The attempt panics mid-run.
    Panic,
    /// The attempt completes but its cost account is inflated by this many
    /// simulated seconds — a straggler for the deadline check.
    Delay(f64),
    /// The attempt returns a corrupted result (an out-of-range block id),
    /// caught by the post-shard invariant validator.
    Corrupt,
}

/// Which attempts of a shard a directive applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptSelector {
    /// One specific attempt (1-based).
    On(usize),
    /// Every attempt — a permanent fault.
    Every,
}

impl AttemptSelector {
    fn matches(&self, attempt: usize) -> bool {
        match self {
            AttemptSelector::On(a) => *a == attempt,
            AttemptSelector::Every => true,
        }
    }
}

/// One fault directive: a kind applied to selected attempts of one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Target shard index.
    pub shard: usize,
    /// Which attempts fail.
    pub attempts: AttemptSelector,
    /// How they fail.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: no faults injected.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled directives.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Add a directive (builder style).
    pub fn with(mut self, shard: usize, attempts: AttemptSelector, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec {
            shard,
            attempts,
            kind,
        });
        self
    }

    /// Panic on one specific attempt of `shard`.
    pub fn panic_on(self, shard: usize, attempt: usize) -> Self {
        self.with(shard, AttemptSelector::On(attempt), FaultKind::Panic)
    }

    /// Panic on every attempt of `shard` — a permanently lost rank.
    pub fn kill(self, shard: usize) -> Self {
        self.with(shard, AttemptSelector::Every, FaultKind::Panic)
    }

    /// Inflate the cost of one attempt of `shard` by `secs`.
    pub fn delay_on(self, shard: usize, attempt: usize, secs: f64) -> Self {
        self.with(shard, AttemptSelector::On(attempt), FaultKind::Delay(secs))
    }

    /// Corrupt the result of one specific attempt of `shard`.
    pub fn corrupt_on(self, shard: usize, attempt: usize) -> Self {
        self.with(shard, AttemptSelector::On(attempt), FaultKind::Corrupt)
    }

    /// The fault injected into `(shard, attempt)`, if any. The first
    /// matching directive wins, so explicit per-attempt directives should be
    /// listed before blanket `@*` ones when both target a shard.
    pub fn fault_for(&self, shard: usize, attempt: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.shard == shard && f.attempts.matches(attempt))
            .map(|f| f.kind)
    }

    /// Parse the CLI grammar (see module docs). Whitespace around
    /// directives is ignored; an empty string is the empty plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for raw in spec.split(',') {
            let directive = raw.trim();
            if directive.is_empty() {
                continue;
            }
            let (kind_name, rest) = directive
                .split_once(':')
                .ok_or_else(|| format!("`{directive}`: expected KIND:SHARD@ATTEMPT"))?;
            let (shard_text, attempt_text) = rest
                .split_once('@')
                .ok_or_else(|| format!("`{directive}`: expected SHARD@ATTEMPT after the kind"))?;
            let shard: usize = shard_text
                .parse()
                .map_err(|e| format!("`{directive}`: bad shard index `{shard_text}`: {e}"))?;
            // delay carries `=SECS` after the attempt selector.
            let (attempt_text, delay_secs) = match attempt_text.split_once('=') {
                Some((a, secs)) => {
                    let secs: f64 = secs
                        .parse()
                        .map_err(|e| format!("`{directive}`: bad delay seconds `{secs}`: {e}"))?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err(format!(
                            "`{directive}`: delay seconds must be finite and non-negative"
                        ));
                    }
                    (a, Some(secs))
                }
                None => (attempt_text, None),
            };
            let attempts = if attempt_text == "*" {
                AttemptSelector::Every
            } else {
                let a: usize = attempt_text
                    .parse()
                    .map_err(|e| format!("`{directive}`: bad attempt `{attempt_text}`: {e}"))?;
                if a == 0 {
                    return Err(format!("`{directive}`: attempts are 1-based"));
                }
                AttemptSelector::On(a)
            };
            let kind = match (kind_name, delay_secs) {
                ("panic", None) => FaultKind::Panic,
                ("corrupt", None) => FaultKind::Corrupt,
                ("delay", Some(secs)) => FaultKind::Delay(secs),
                ("delay", None) => {
                    return Err(format!("`{directive}`: delay needs `=SECS`"));
                }
                ("panic" | "corrupt", Some(_)) => {
                    return Err(format!("`{directive}`: only delay takes `=SECS`"));
                }
                (other, _) => {
                    return Err(format!(
                        "`{directive}`: unknown fault kind `{other}` (panic|delay|corrupt)"
                    ));
                }
            };
            plan.faults.push(FaultSpec {
                shard,
                attempts,
                kind,
            });
        }
        Ok(plan)
    }

    /// Shards this plan fails on *every* attempt with a panic or corruption
    /// (stragglers can still pass if no deadline is configured).
    pub fn permanently_failed_shards(&self) -> Vec<usize> {
        let mut shards: Vec<usize> = self
            .faults
            .iter()
            .filter(|f| {
                f.attempts == AttemptSelector::Every
                    && matches!(f.kind, FaultKind::Panic | FaultKind::Corrupt)
            })
            .map(|f| f.shard)
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, spec) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            let kind = match spec.kind {
                FaultKind::Panic => "panic",
                FaultKind::Delay(_) => "delay",
                FaultKind::Corrupt => "corrupt",
            };
            write!(f, "{kind}:{}", spec.shard)?;
            match spec.attempts {
                AttemptSelector::On(a) => write!(f, "@{a}")?,
                AttemptSelector::Every => write!(f, "@*")?,
            }
            if let FaultKind::Delay(secs) = spec.kind {
                write!(f, "={secs}")?;
            }
        }
        Ok(())
    }
}

/// Deterministically corrupt a shard result in place: plant one
/// out-of-range block id at a seed-derived vertex (and inflate the block
/// count on empty shards so even those trip the validator).
pub fn corrupt_result(result: &mut SbpResult, seed: u64) {
    if result.assignment.is_empty() {
        result.num_blocks += 1;
        return;
    }
    let idx = (seed % result.assignment.len() as u64) as usize;
    result.assignment[idx] = result.num_blocks as u32 + 1;
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let plan = FaultPlan::parse("panic:0@1, panic:3@*,delay:1@2=5.5,corrupt:2@1").unwrap();
        assert_eq!(plan.specs().len(), 4);
        assert_eq!(plan.fault_for(0, 1), Some(FaultKind::Panic));
        assert_eq!(plan.fault_for(0, 2), None);
        assert_eq!(plan.fault_for(3, 7), Some(FaultKind::Panic));
        assert_eq!(plan.fault_for(1, 2), Some(FaultKind::Delay(5.5)));
        assert_eq!(plan.fault_for(2, 1), Some(FaultKind::Corrupt));
        assert_eq!(plan.fault_for(2, 2), None);
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "panic",
            "panic:x@1",
            "panic:0@0",
            "panic:0@q",
            "delay:0@1",
            "delay:0@1=NaN",
            "delay:0@1=-2",
            "corrupt:0@1=3",
            "frob:0@1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn permanent_failures_listed() {
        let plan =
            FaultPlan::parse("panic:1@*,panic:1@*,delay:2@*=9,corrupt:4@*,panic:0@1").unwrap();
        assert_eq!(plan.permanently_failed_shards(), vec![1, 4]);
    }
}
