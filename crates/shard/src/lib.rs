//! Sharded divide-and-conquer stochastic block partitioning.
//!
//! The paper parallelises the MCMC phase *inside* one shared-memory
//! blockmodel; this crate implements the next step its authors take in
//! *Exact Distributed Stochastic Block Partitioning* (arXiv:2305.18663),
//! following the divide-and-conquer recipe of Roy & Atchadé
//! (arXiv:1610.09724):
//!
//! 1. **Partition** ([`partition`]): split the vertex set into `k` shards —
//!    round-robin, degree-balanced greedy, or an external METIS `.part.K`
//!    file — producing per-shard induced subgraphs, local↔global vertex-id
//!    translation tables, and cut-edge accounting.
//! 2. **Per-shard SBP** ([`runner`]), under **supervision**
//!    ([`supervisor`]): run the existing [`hsbp_core::run_sbp`] on every
//!    shard in parallel (rayon), emulating distributed ranks through
//!    `hsbp-timing`'s simulated cost model so strong-scaling curves can be
//!    reported from a single-core host. Each shard job runs under
//!    `catch_unwind` with a deadline; failed attempts retry with a fresh
//!    seed and exponential backoff, results are checked by an invariant
//!    validator, and shards that exhaust their budget are dropped rather
//!    than aborting the run. Shards deliberately *over-partition* — their
//!    agglomerative search stops at ~`√n` sub-blocks — because a shard only
//!    sees `~1/k` of the edges and would underfit if allowed to merge all
//!    the way down.
//! 3. **Stitch** ([`stitch`]): reassemble a global
//!    [`hsbp_blockmodel::Blockmodel`] from the disjoint per-shard block
//!    assignments, then finish the agglomerative search globally: the
//!    driver's golden-section bracket over the block count, warm-started
//!    from the stitched union instead of the singleton partition, with
//!    [`hsbp_core::merge_phase`] fusing shard-boundary blocks and a short
//!    full-graph H-SBP finetune after every merge so cut edges can pull
//!    mis-sharded vertices across shard boundaries. When shards were
//!    dropped, their vertices are first majority-voted onto surviving
//!    shards' blocks over the cut edges (graceful degradation).
//!
//! Long runs can checkpoint each completed shard to a run directory
//! ([`checkpoint`], [`run_sharded_sbp_resumable`]) and resume after a kill,
//! re-running only unfinished shards. Deterministic fault injection for all
//! of the above lives in [`faults`].
//!
//! Accuracy caveat: every edge between shards is invisible to the per-shard
//! runs, so quality degrades as the cut fraction grows. Degree-balanced or
//! METIS partitions keep the cut (and the error) much smaller than
//! round-robin on graphs with community structure; [`ShardedRun`] reports
//! the cut fraction so callers can judge.
//!
//! ```
//! use hsbp_shard::{run_sharded_sbp, ShardConfig};
//! use hsbp_generator::{generate, DcsbmConfig};
//!
//! let data = generate(DcsbmConfig { num_vertices: 300, num_communities: 4,
//!     target_num_edges: 2400, seed: 11, ..Default::default() });
//! let result = run_sharded_sbp(&data.graph, &ShardConfig {
//!     num_shards: 2, ..Default::default() }).expect("valid config");
//! assert_eq!(result.assignment.len(), 300);
//! assert!(result.num_blocks >= 1);
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod channel;
pub mod checkpoint;
pub mod exact;
pub mod faults;
pub mod partition;
pub mod runner;
pub mod stitch;
pub mod supervisor;

use hsbp_core::{SbpConfig, SbpResult, Variant};
use hsbp_graph::Graph;
use std::path::Path;

pub use channel::{NetFaultPlan, NetTotals, SYNC_PROTOCOL_VERSION};
pub use checkpoint::{Checkpoint, LoadedShard};
pub use exact::{run_exact_sbp, DeadShard, ExactConfig, ExactRun, RoundNet};
pub use faults::{AttemptSelector, FaultKind, FaultPlan, FaultSpec};
pub use hsbp_core::HsbpError;
pub use partition::{partition_graph, PartitionStrategy, Shard, ShardPlan};
pub use runner::{run_shards, CostBasis, EmulatedScaling};
pub use stitch::{stitch, stitch_supervised, StitchReport};
pub use supervisor::{
    run_shards_supervised, validate_shard_result, AttemptFailure, FailureKind, ShardOutcome,
    ShardStatus, SupervisedShards, SupervisorConfig,
};

/// Configuration of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (emulated distributed ranks). Ignored when
    /// `strategy` carries its own part count ([`PartitionStrategy::FromParts`]).
    pub num_shards: usize,
    /// How vertices are assigned to shards.
    pub strategy: PartitionStrategy,
    /// Per-shard SBP configuration (also the base for the stitch phase).
    /// The per-shard seed is derived from `sbp.seed` and the shard index.
    pub sbp: SbpConfig,
    /// MCMC variant of the full-graph finetune after stitching.
    pub finetune_variant: Variant,
    /// Sweep cap of each finetune phase. Each phase still stops early at
    /// `sbp.mcmc_threshold`, so this is a safety cap, not a target; it only
    /// needs to be large enough for boundary vertices to cross over.
    pub finetune_sweeps: usize,
    /// Supervision policy: retries, deadlines, fault injection.
    pub supervision: SupervisorConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            strategy: PartitionStrategy::DegreeBalanced,
            sbp: SbpConfig::default(),
            finetune_variant: Variant::Hybrid,
            finetune_sweeps: 20,
            supervision: SupervisorConfig::default(),
        }
    }
}

impl ShardConfig {
    /// Convenience constructor: shard count and seed, defaults elsewhere.
    pub fn new(num_shards: usize, seed: u64) -> Self {
        Self {
            num_shards,
            sbp: SbpConfig {
                seed,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Validate invariants; called by [`run_sharded_sbp`].
    pub fn validate(&self) -> Result<(), String> {
        if self.num_shards == 0 {
            return Err("num_shards must be at least 1".into());
        }
        if self.finetune_sweeps == 0 {
            return Err("finetune_sweeps must be at least 1".into());
        }
        self.supervision.validate()?;
        self.sbp.validate()
    }
}

/// Everything a sharded run produced, beyond the final [`SbpResult`].
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The stitched, finetuned global partition.
    pub result: SbpResult,
    /// Vertex count, edge count and found block count of every shard.
    pub shard_summaries: Vec<ShardSummary>,
    /// Cut-edge fraction of the partition (directed edges crossing shards
    /// over total directed edges).
    pub cut_fraction: f64,
    /// Emulated distributed-rank strong scaling of the per-shard phase.
    pub scaling: EmulatedScaling,
    /// What the stitch phase did (including degradation accounting).
    pub stitch: StitchReport,
    /// Per-shard supervision record: attempts, failures, terminal status.
    pub outcomes: Vec<ShardOutcome>,
}

impl ShardedRun {
    /// True when at least one shard was dropped and its vertices were
    /// reassigned by majority vote — quality and scaling figures then
    /// describe a degraded run.
    pub fn degraded(&self) -> bool {
        self.outcomes.iter().any(|o| !o.survived())
    }
}

/// Per-shard result summary.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Vertices in the shard.
    pub num_vertices: usize,
    /// Directed intra-shard edges.
    pub num_edges: usize,
    /// Blocks the shard-local SBP run found (0 for dropped shards).
    pub num_blocks: usize,
    /// MDL of the shard-local partition (NaN for dropped shards).
    pub mdl_total: f64,
}

/// Run the full sharded pipeline: partition → per-shard SBP (supervised) →
/// stitch → finetune. Deterministic in `(graph, cfg)`.
pub fn run_sharded_sbp(graph: &Graph, cfg: &ShardConfig) -> Result<SbpResult, HsbpError> {
    Ok(run_sharded_sbp_detailed(graph, cfg)?.result)
}

/// Like [`run_sharded_sbp`], also returning per-shard summaries, cut
/// accounting, emulated scaling, supervision outcomes and the stitch
/// report.
pub fn run_sharded_sbp_detailed(graph: &Graph, cfg: &ShardConfig) -> Result<ShardedRun, HsbpError> {
    run_sharded_impl(graph, cfg, None)
}

/// Like [`run_sharded_sbp_detailed`], but checkpointing every completed
/// shard into `run_dir`. On a directory that already holds shards from an
/// interrupted run of the *same* `(graph, cfg)`, only unfinished shards are
/// re-run; a directory from a different run is refused with
/// [`HsbpError::Checkpoint`].
pub fn run_sharded_sbp_resumable(
    graph: &Graph,
    cfg: &ShardConfig,
    run_dir: impl AsRef<Path>,
) -> Result<ShardedRun, HsbpError> {
    run_sharded_impl(graph, cfg, Some(run_dir.as_ref()))
}

fn run_sharded_impl(
    graph: &Graph,
    cfg: &ShardConfig,
    run_dir: Option<&Path>,
) -> Result<ShardedRun, HsbpError> {
    cfg.validate().map_err(HsbpError::InvalidConfig)?;
    if let PartitionStrategy::FromParts(parts) = &cfg.strategy {
        if parts.len() != graph.num_vertices() {
            return Err(HsbpError::PartitionMismatch {
                partition_len: parts.len(),
                num_vertices: graph.num_vertices(),
            });
        }
    }
    let plan = partition_graph(graph, cfg.num_shards, &cfg.strategy);
    let ckpt = match run_dir {
        Some(dir) => Some(Checkpoint::open_or_create(dir, graph, cfg, &plan.parts)?),
        None => None,
    };
    let supervised = run_shards_supervised(&plan, cfg, ckpt.as_ref())?;
    let shard_summaries = plan
        .shards
        .iter()
        .zip(&supervised.results)
        .map(|(shard, result)| ShardSummary {
            num_vertices: shard.graph.num_vertices(),
            num_edges: shard.graph.num_edges(),
            num_blocks: result.as_ref().map_or(0, |r| r.num_blocks),
            mdl_total: result.as_ref().map_or(f64::NAN, |r| r.mdl.total),
        })
        .collect();
    let cut_fraction = plan.cut_fraction();
    let (result, stitch) = stitch_supervised(graph, &plan, &supervised.results, cfg)?;
    Ok(ShardedRun {
        result,
        shard_summaries,
        cut_fraction,
        scaling: supervised.scaling,
        stitch,
        outcomes: supervised.outcomes,
    })
}
