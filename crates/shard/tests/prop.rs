//! Property tests for the shard partitioning layer: translation tables,
//! conservation of vertices/edges, and cut accounting.

use hsbp_graph::{Graph, Vertex};
use hsbp_shard::{partition_graph, PartitionStrategy};
use proptest::prelude::*;

fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |edges| Graph::from_edges(n as usize, &edges))
    })
}

fn arb_strategy() -> impl Strategy<Value = PartitionStrategy> {
    (0u8..2).prop_map(|which| match which {
        0 => PartitionStrategy::RoundRobin,
        _ => PartitionStrategy::DegreeBalanced,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Global → (shard, local) → global is the identity, and every global
    /// vertex appears in exactly one shard.
    #[test]
    fn translation_roundtrip(g in arb_graph(60, 150), k in 1usize..9, strategy in arb_strategy()) {
        let plan = partition_graph(&g, k, &strategy);
        for v in 0..g.num_vertices() as Vertex {
            let (shard, local) = plan.to_local(v);
            prop_assert!(shard < plan.num_shards());
            prop_assert_eq!(plan.to_global(shard, local), v);
        }
        let total: usize = plan.shards.iter().map(|s| s.graph.num_vertices()).sum();
        prop_assert_eq!(total, g.num_vertices());
        // to_global tables are injective overall.
        let mut seen = vec![false; g.num_vertices()];
        for shard in &plan.shards {
            for &global in &shard.to_global {
                prop_assert!(!seen[global as usize], "vertex {} in two shards", global);
                seen[global as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Intra-shard edges plus cut edges account for every edge and all
    /// weight of the input graph.
    #[test]
    fn edges_are_conserved(g in arb_graph(40, 120), k in 1usize..6, strategy in arb_strategy()) {
        let plan = partition_graph(&g, k, &strategy);
        let intra_edges: usize = plan.shards.iter().map(|s| s.graph.num_edges()).sum();
        let intra_weight: u64 = plan.shards.iter().map(|s| s.graph.total_weight()).sum();
        prop_assert_eq!(intra_edges + plan.cut_edges, g.num_edges());
        prop_assert_eq!(intra_weight + plan.cut_weight, g.total_weight());
        let f = plan.cut_fraction();
        prop_assert!((0.0..=1.0).contains(&f) || g.num_edges() == 0);
    }

    /// Each shard's subgraph preserves the weights of its internal edges.
    #[test]
    fn shard_edges_match_parent(g in arb_graph(30, 80), k in 2usize..5) {
        let plan = partition_graph(&g, k, &PartitionStrategy::RoundRobin);
        for (s, shard) in plan.shards.iter().enumerate() {
            for (lu, lv, w) in shard.graph.edges() {
                let gu = plan.to_global(s, lu);
                let gv = plan.to_global(s, lv);
                let parent_w = g.out_edges(gu).find(|&(t, _)| t == gv).map(|(_, w)| w);
                prop_assert_eq!(parent_w, Some(w));
            }
        }
    }
}
