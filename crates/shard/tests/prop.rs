//! Property tests for the shard partitioning layer (translation tables,
//! conservation of vertices/edges, cut accounting) and the supervision
//! layer (fault plans never break completed runs; zero-fault supervised
//! runs are bit-identical to the unsupervised path).

use hsbp_graph::{Graph, Vertex};
use hsbp_shard::{
    partition_graph, run_sharded_sbp, run_sharded_sbp_detailed, run_shards, stitch,
    AttemptSelector, FaultKind, FaultPlan, PartitionStrategy, ShardConfig,
};
use proptest::prelude::*;

fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |edges| Graph::from_edges(n as usize, &edges))
    })
}

fn arb_strategy() -> impl Strategy<Value = PartitionStrategy> {
    (0u8..2).prop_map(|which| match which {
        0 => PartitionStrategy::RoundRobin,
        _ => PartitionStrategy::DegreeBalanced,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Global → (shard, local) → global is the identity, and every global
    /// vertex appears in exactly one shard.
    #[test]
    fn translation_roundtrip(g in arb_graph(60, 150), k in 1usize..9, strategy in arb_strategy()) {
        let plan = partition_graph(&g, k, &strategy);
        for v in 0..g.num_vertices() as Vertex {
            let (shard, local) = plan.to_local(v);
            prop_assert!(shard < plan.num_shards());
            prop_assert_eq!(plan.to_global(shard, local), v);
        }
        let total: usize = plan.shards.iter().map(|s| s.graph.num_vertices()).sum();
        prop_assert_eq!(total, g.num_vertices());
        // to_global tables are injective overall.
        let mut seen = vec![false; g.num_vertices()];
        for shard in &plan.shards {
            for &global in &shard.to_global {
                prop_assert!(!seen[global as usize], "vertex {} in two shards", global);
                seen[global as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Intra-shard edges plus cut edges account for every edge and all
    /// weight of the input graph.
    #[test]
    fn edges_are_conserved(g in arb_graph(40, 120), k in 1usize..6, strategy in arb_strategy()) {
        let plan = partition_graph(&g, k, &strategy);
        let intra_edges: usize = plan.shards.iter().map(|s| s.graph.num_edges()).sum();
        let intra_weight: u64 = plan.shards.iter().map(|s| s.graph.total_weight()).sum();
        prop_assert_eq!(intra_edges + plan.cut_edges, g.num_edges());
        prop_assert_eq!(intra_weight + plan.cut_weight, g.total_weight());
        let f = plan.cut_fraction();
        prop_assert!((0.0..=1.0).contains(&f) || g.num_edges() == 0);
    }

    /// Each shard's subgraph preserves the weights of its internal edges.
    #[test]
    fn shard_edges_match_parent(g in arb_graph(30, 80), k in 2usize..5) {
        let plan = partition_graph(&g, k, &PartitionStrategy::RoundRobin);
        for (s, shard) in plan.shards.iter().enumerate() {
            for (lu, lv, w) in shard.graph.edges() {
                let gu = plan.to_global(s, lu);
                let gv = plan.to_global(s, lv);
                let parent_w = g.out_edges(gu).find(|&(t, _)| t == gv).map(|(_, w)| w);
                prop_assert_eq!(parent_w, Some(w));
            }
        }
    }
}

/// One generated fault directive targeting shards `1..k` — shard 0 is
/// always left alone, so at least one non-empty shard survives every plan.
fn arb_fault(k: usize) -> impl Strategy<Value = (usize, u8, u8)> {
    (1..k.max(2), 0u8..3, 0u8..3)
}

fn build_plan(k: usize, raw: Vec<(usize, u8, u8)>) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for (shard, sel, kind) in raw {
        let shard = shard.min(k - 1).max(1);
        let attempts = match sel {
            0 => AttemptSelector::On(1),
            1 => AttemptSelector::On(2),
            _ => AttemptSelector::Every,
        };
        let kind = match kind {
            0 => FaultKind::Panic,
            1 => FaultKind::Corrupt,
            _ => FaultKind::Delay(1e9),
        };
        plan = plan.with(shard, attempts, kind);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded fault plan that leaves at least one shard alive (shard 0
    /// is never targeted here) still yields `Ok` with a full membership
    /// vector: dropped shards degrade, they do not abort.
    #[test]
    fn faulty_runs_still_complete(
        g in arb_graph(40, 100),
        k in 2usize..5,
        raw in proptest::collection::vec(arb_fault(5), 0..6),
        seed in 0u64..1000,
    ) {
        let n = g.num_vertices();
        let mut cfg = ShardConfig::new(k, seed);
        cfg.strategy = PartitionStrategy::RoundRobin; // shard 0 non-empty
        cfg.supervision.fault_plan = build_plan(k, raw);
        let run = run_sharded_sbp_detailed(&g, &cfg);
        let run = run.expect("a surviving shard means the run completes");
        prop_assert_eq!(run.result.assignment.len(), n);
        prop_assert!(run.result.num_blocks >= 1);
        for (v, &b) in run.result.assignment.iter().enumerate() {
            prop_assert!(
                (b as usize) < run.result.num_blocks,
                "vertex {} in out-of-range block {}", v, b
            );
        }
        prop_assert_eq!(run.outcomes.len(), run.shard_summaries.len());
        prop_assert!(run.outcomes[0].survived());
    }

    /// With no faults injected, the supervised pipeline is bit-identical to
    /// the pre-supervision path (bare `run_shards` + `stitch`).
    #[test]
    fn zero_fault_runs_match_unsupervised_path(
        g in arb_graph(40, 100),
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        let cfg = ShardConfig::new(k, seed);
        let plan = partition_graph(&g, k, &cfg.strategy);
        let (shard_results, _) = run_shards(&plan, &cfg);
        let (expected, _) = stitch(&g, &plan, &shard_results, &cfg);
        let supervised = run_sharded_sbp(&g, &cfg).expect("valid config");
        prop_assert_eq!(supervised.assignment, expected.assignment);
        prop_assert_eq!(supervised.num_blocks, expected.num_blocks);
        prop_assert_eq!(supervised.mdl.total, expected.mdl.total);
    }
}
