//! Property tests for the delta-sync message codec and its delivery
//! semantics: encode/decode round-trip, 100% detection of payload
//! corruption, and replay idempotence (a duplicated delta is a no-op on
//! the replica).

use hsbp_blockmodel::Blockmodel;
use hsbp_graph::{Graph, Vertex};
use hsbp_shard::channel::{
    blockmodel_digest, decode_msg, encode_msg, DecodeError, Offer, PeerTracker, SyncPayload,
    HEADER_LEN,
};
use hsbp_shard::exact::apply_delta;
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = SyncPayload> {
    (
        0u8..4,
        0u32..64,
        proptest::collection::vec((0u32..10_000, 0u32..512), 0..200),
        any::<u64>(),
        1u32..512,
    )
        .prop_map(|(kind, shard, moves, word, num_blocks)| match kind {
            0 => SyncPayload::Delta { shard, moves },
            1 => SyncPayload::Nack {
                shard,
                missing_from: shard ^ 1,
                missing_seq: word,
            },
            2 => SyncPayload::Digest {
                shard,
                digest: word,
            },
            _ => SyncPayload::Resync {
                num_blocks,
                assignment: moves.into_iter().map(|(v, _)| v % num_blocks).collect(),
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every payload survives the wire format byte-exactly.
    #[test]
    fn codec_roundtrip(seq in any::<u64>(), payload in arb_payload()) {
        let frame = encode_msg(seq, &payload);
        let (got_seq, got) = decode_msg(&frame).expect("own encoding must decode");
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got, payload);
    }

    /// Corrupting any single payload byte (any position, any non-zero XOR
    /// mask) is detected by the FNV-1a checksum: detection rate is 100%,
    /// no corrupted payload ever decodes.
    #[test]
    fn payload_corruption_detection_rate_is_total(
        seq in any::<u64>(),
        payload in arb_payload(),
        pos in any::<usize>(),
        mask_source in 0u8..255,
    ) {
        let mask = mask_source.wrapping_add(1); // 1..=255, never the identity XOR
        let mut frame = encode_msg(seq, &payload);
        prop_assume!(frame.len() > HEADER_LEN); // empty payloads have no byte to corrupt
        let idx = HEADER_LEN + pos % (frame.len() - HEADER_LEN);
        frame[idx] ^= mask;
        prop_assert!(
            decode_msg(&frame).is_err(),
            "corrupted byte {} slipped through the checksum", idx
        );
    }

    /// Truncating a frame anywhere is detected, never mis-decoded.
    #[test]
    fn truncation_is_always_detected(
        seq in any::<u64>(),
        payload in arb_payload(),
        cut in any::<usize>(),
    ) {
        let frame = encode_msg(seq, &payload);
        let keep = cut % frame.len();
        match decode_msg(&frame[..keep]) {
            Err(DecodeError::Truncated | DecodeError::Malformed) => {}
            other => prop_assert!(false, "truncation at {} gave {:?}", keep, other),
        }
    }

    /// Replaying a delta is a no-op on the replica: folding the same move
    /// list twice leaves the model byte-identical to folding it once.
    #[test]
    fn replay_is_idempotent_on_the_replica(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 10..120),
        moves in proptest::collection::vec((0u32..40, 0u32..4), 1..30),
    ) {
        let graph = Graph::from_edges(40, &edges);
        let init: Vec<u32> = (0..40u32).map(|v| v % 4).collect();
        let base = Blockmodel::from_assignment(&graph, init, 4);

        let mut once = base.clone();
        apply_delta(&graph, &mut once, &moves);
        let mut twice = base;
        apply_delta(&graph, &mut twice, &moves);
        let digest_after_one = blockmodel_digest(&twice);
        apply_delta(&graph, &mut twice, &moves);

        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(blockmodel_digest(&twice), digest_after_one);
    }

    /// The sequence tracker delivers each number exactly once regardless of
    /// duplication, and applied numbers form the contiguous prefix from 0.
    #[test]
    fn tracker_applies_each_seq_once(
        mut arrivals in proptest::collection::vec(0u64..20, 1..80),
    ) {
        let mut tracker = PeerTracker::default();
        let mut applied = Vec::new();
        arrivals.sort_unstable(); // feed ascending so in-order offers apply
        for seq in arrivals {
            match tracker.offer(seq) {
                Offer::Apply => applied.push(seq),
                Offer::Duplicate | Offer::Future => {}
            }
        }
        let mut dedup = applied.clone();
        dedup.dedup();
        prop_assert_eq!(&applied, &dedup, "a sequence number applied twice");
        // Applied numbers are exactly the contiguous prefix from 0.
        prop_assert!(applied.iter().enumerate().all(|(i, &s)| s == i as u64));
    }
}

/// Deterministic spot-check of the delta path against a real accepted-move
/// pattern: moves drawn from one model state fold into a lagging replica
/// and land on the sender's exact state.
#[test]
fn delta_fold_reaches_sender_state() {
    let edges: Vec<(Vertex, Vertex)> = (0u32..60)
        .flat_map(|v| [(v, (v + 1) % 60), (v, (v + 7) % 60)])
        .collect();
    let graph = Graph::from_edges(60, &edges);
    let init: Vec<u32> = (0..60u32).map(|v| v % 3).collect();
    let mut sender = Blockmodel::from_assignment(&graph, init.clone(), 3);
    let mut replica = Blockmodel::from_assignment(&graph, init, 3);

    // The sender moves a handful of vertices (recording deltas), the
    // replica folds the delta list.
    let mut moves: Vec<(Vertex, u32)> = Vec::new();
    for &(v, to) in &[(3u32, 1u32), (9, 2), (14, 0), (3, 2), (57, 1)] {
        let from = sender.block_of(v);
        if from == to {
            continue;
        }
        let mut arena = hsbp_blockmodel::ProposalArena::default();
        hsbp_blockmodel::NeighborCounts::gather_into(
            &graph,
            sender.assignment(),
            v,
            &mut arena.scratch,
            &mut arena.counts,
        );
        sender.apply_move(v, from, to, &arena.counts);
        moves.push((v, to));
    }
    apply_delta(&graph, &mut replica, &moves);
    assert_eq!(replica, sender);
    assert_eq!(blockmodel_digest(&replica), blockmodel_digest(&sender));
}
