//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the exact subset of the `rand` 0.8 API the workspace consumes:
//! [`RngCore`], the [`Rng`] extension trait with `gen` / `gen_range` /
//! `gen_bool`, and the [`Error`] type. Generators themselves live in
//! `hsbp-collections` ([`SplitMix64`](../hsbp_collections) implements
//! [`RngCore`]); this crate deliberately ships no RNG of its own.

use std::fmt;
use std::ops::Range;

/// Error type mirroring `rand::Error`. Infallible in this workspace (every
/// generator is deterministic and in-memory), kept for signature
/// compatibility.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from an RNG's raw output (the role of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Range types usable with [`Rng::gen_range`] (the role of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire multiply-shift; span < 2^64 always holds here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )+};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )+};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension trait mirroring `rand::Rng`, blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // splitmix64 so the stream looks uniform.
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let s = rng.gen_range(-8i32..9);
            assert!((-8..9).contains(&s));
            let f: f64 = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval_and_covers_range() {
        let mut rng = Counter(7);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.5;
            hi |= x >= 0.5;
        }
        assert!(lo && hi);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        rng.try_fill_bytes(&mut buf).unwrap();
    }
}
