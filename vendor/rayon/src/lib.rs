//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of rayon's API the workspace uses — `into_par_iter`
//! on ranges and vectors, `par_iter` on slices, and the `map` / `map_init` /
//! `filter` / `step_by` / `collect` / `count` adaptors — with *real*
//! fork-join parallelism over [`std::thread::scope`]. Semantics match rayon
//! where it matters for this workspace:
//!
//! * results are collected **in iteration order**, and
//! * `map_init` creates one scratch value per worker chunk, never shared.
//!
//! Unlike rayon there is no work-stealing pool: each adaptor chain executes
//! eagerly, splitting the items into one contiguous chunk per available
//! core. On a single-core host everything runs inline with no thread
//! overhead.

use std::ops::Range;

/// Number of worker threads a parallel section will use (rayon's
/// `current_num_threads`).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `f` over `items` in parallel (one contiguous chunk per thread),
/// preserving order. `init` produces one per-chunk scratch value.
fn parallel_map<T, U, I, F>(items: Vec<T>, init: impl Fn() -> I + Sync, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(&mut I, T) -> U + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() < 2 {
        let mut scratch = init();
        return items
            .into_iter()
            .map(|item| f(&mut scratch, item))
            .collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, tail));
    }
    let f = &f;
    let init = &init;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = init();
                    chunk
                        .into_iter()
                        .map(|item| f(&mut scratch, item))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// An eagerly-evaluated parallel iterator over an owned item buffer.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel, preserving order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: parallel_map(self.items, || (), |(), item| f(item)),
        }
    }

    /// Like [`ParIter::map`] with a per-worker scratch value created by
    /// `init` (rayon's `map_init`).
    pub fn map_init<I, U, N, F>(self, init: N, f: F) -> ParIter<U>
    where
        U: Send,
        N: Fn() -> I + Sync,
        F: Fn(&mut I, T) -> U + Sync,
    {
        ParIter {
            items: parallel_map(self.items, init, f),
        }
    }

    /// Keep the items matching `predicate` (evaluated in parallel).
    pub fn filter<P: Fn(&T) -> bool + Sync>(self, predicate: P) -> ParIter<T> {
        let kept = parallel_map(
            self.items,
            || (),
            |(), item| {
                let keep = predicate(&item);
                (keep, item)
            },
        );
        ParIter {
            items: kept
                .into_iter()
                .filter(|(k, _)| *k)
                .map(|(_, item)| item)
                .collect(),
        }
    }

    /// Keep every `step`-th item starting from the first.
    pub fn step_by(self, step: usize) -> ParIter<T> {
        assert!(step > 0, "step_by requires a positive step");
        ParIter {
            items: self.items.into_iter().step_by(step).collect(),
        }
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collect into any container buildable from a `Vec` (in practice:
    /// `Vec` itself).
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// Conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Create the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),+ $(,)?) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )+};
}

impl_range_par_iter!(u8, u16, u32, u64, usize);

/// Borrowing conversion (rayon's `IntoParallelRefIterator`): `par_iter` on
/// slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Create a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0usize..1000).into_par_iter().map(|v| v * 2).collect();
        assert_eq!(out, (0..1000).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_scratch_is_private() {
        // Each worker counts its own items; the mapped output must still be
        // the identity regardless of how chunks were assigned.
        let out: Vec<u32> = (0u32..257)
            .into_par_iter()
            .map_init(
                || 0u32,
                |count, v| {
                    *count += 1;
                    v
                },
            )
            .collect();
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn filter_count_and_step_by() {
        let evens = (0usize..100).into_par_iter().filter(|v| v % 2 == 0).count();
        assert_eq!(evens, 50);
        let strided: Vec<usize> = (0usize..10).into_par_iter().step_by(3).collect();
        assert_eq!(strided, vec![0, 3, 6, 9]);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3];
        let doubled: Vec<u64> = data.par_iter().map(|&v| v * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        assert_eq!(data.len(), 3);
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
