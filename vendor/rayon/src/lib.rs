//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of rayon's API the workspace uses — `into_par_iter`
//! on ranges and vectors, `par_iter` on slices, and the `map` / `map_init` /
//! `filter` / `step_by` / `collect` / `count` adaptors. Semantics match rayon
//! where it matters for this workspace:
//!
//! * results are collected **in iteration order**, and
//! * `map_init` creates one scratch value per worker, never shared.
//!
//! Since the `hsbp-parallel` crate landed, this shim is a thin compatibility
//! wrapper: parallel sections execute on the persistent [`hsbp_parallel`]
//! worker pool (workers parked between sections, dynamic chunk grab-sharing)
//! instead of spawning fresh threads per call. Worker panics are re-raised on
//! the caller with their **original payload**, so a supervisor's
//! `catch_unwind` sees the real fault. New code should prefer
//! `hsbp_parallel::ThreadPool` directly (cost-weighted chunk plans, resident
//! scratch); this wrapper exists so vendored-API callers still compile.

use std::ops::Range;

/// Number of worker threads a parallel section will use (rayon's
/// `current_num_threads`). Honours `HSBP_THREADS`.
#[inline]
pub fn current_num_threads() -> usize {
    hsbp_parallel::configured_threads()
}

/// Run `f` over `items` on the persistent pool, preserving order. `init`
/// produces one per-worker scratch value. Panics from any worker are
/// re-raised on the caller with the worker's original payload.
#[inline]
fn parallel_map<T, U, I, F>(items: Vec<T>, init: impl Fn() -> I + Sync, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(&mut I, T) -> U + Sync,
{
    // Short-circuit before any chunk bookkeeping: the single-thread and
    // tiny-input paths are hot (per-sweep sections on small shards).
    if current_num_threads() <= 1 || items.len() < 2 {
        let mut scratch = init();
        return items
            .into_iter()
            .map(|item| f(&mut scratch, item))
            .collect();
    }
    hsbp_parallel::global().map_vec(items, init, f)
}

/// An eagerly-evaluated parallel iterator over an owned item buffer.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel, preserving order.
    #[inline]
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: parallel_map(self.items, || (), |(), item| f(item)),
        }
    }

    /// Like [`ParIter::map`] with a per-worker scratch value created by
    /// `init` (rayon's `map_init`).
    #[inline]
    pub fn map_init<I, U, N, F>(self, init: N, f: F) -> ParIter<U>
    where
        U: Send,
        N: Fn() -> I + Sync,
        F: Fn(&mut I, T) -> U + Sync,
    {
        ParIter {
            items: parallel_map(self.items, init, f),
        }
    }

    /// Keep the items matching `predicate` (evaluated in parallel).
    #[inline]
    pub fn filter<P: Fn(&T) -> bool + Sync>(self, predicate: P) -> ParIter<T> {
        // Single-thread / tiny inputs: filter in place, no (flag, item)
        // round-trip through a second buffer.
        if current_num_threads() <= 1 || self.items.len() < 2 {
            return ParIter {
                items: self.items.into_iter().filter(|t| predicate(t)).collect(),
            };
        }
        let kept = parallel_map(
            self.items,
            || (),
            |(), item| {
                let keep = predicate(&item);
                (keep, item)
            },
        );
        ParIter {
            items: kept
                .into_iter()
                .filter(|(k, _)| *k)
                .map(|(_, item)| item)
                .collect(),
        }
    }

    /// Keep every `step`-th item starting from the first.
    #[inline]
    pub fn step_by(self, step: usize) -> ParIter<T> {
        assert!(step > 0, "step_by requires a positive step");
        ParIter {
            items: self.items.into_iter().step_by(step).collect(),
        }
    }

    /// Number of items.
    #[inline]
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collect into any container buildable from a `Vec` (in practice:
    /// `Vec` itself).
    #[inline]
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// Conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Create the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    #[inline]
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),+ $(,)?) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            #[inline]
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )+};
}

impl_range_par_iter!(u8, u16, u32, u64, usize);

/// Borrowing conversion (rayon's `IntoParallelRefIterator`): `par_iter` on
/// slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Create a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    #[inline]
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    #[inline]
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0usize..1000).into_par_iter().map(|v| v * 2).collect();
        assert_eq!(out, (0..1000).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_scratch_is_private() {
        // Each worker counts its own items; the mapped output must still be
        // the identity regardless of how chunks were assigned.
        let out: Vec<u32> = (0u32..257)
            .into_par_iter()
            .map_init(
                || 0u32,
                |count, v| {
                    *count += 1;
                    v
                },
            )
            .collect();
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn filter_count_and_step_by() {
        let evens = (0usize..100).into_par_iter().filter(|v| v % 2 == 0).count();
        assert_eq!(evens, 50);
        let strided: Vec<usize> = (0usize..10).into_par_iter().step_by(3).collect();
        assert_eq!(strided, vec![0, 3, 6, 9]);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3];
        let doubled: Vec<u64> = data.par_iter().map(|&v| v * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        assert_eq!(data.len(), 3);
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn panic_payload_surfaces_original_message() {
        // A worker panic must reach the caller's catch_unwind with its
        // original payload, not a generic "worker panicked" message — the
        // shard supervisor's fault classification depends on it.
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> = (0u32..128)
                .into_par_iter()
                .map(|v| {
                    if v == 77 {
                        panic!("injected fault in vertex 77");
                    }
                    v
                })
                .collect();
        });
        let payload = match result {
            Err(p) => p,
            Ok(()) => panic!("expected the parallel map to panic"),
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()));
        assert_eq!(msg.as_deref(), Some("injected fault in vertex 77"));
    }
}
