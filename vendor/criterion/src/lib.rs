//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of criterion's API the workspace's benches use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::new`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a handful of
//! wall-clock samples and prints the mean per-iteration time. When invoked
//! with `--test` (what `cargo test` passes to `harness = false` targets)
//! every benchmark body runs exactly once as a smoke test, so the tier-1
//! suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark in measurement mode.
const MEASURE_SAMPLES: usize = 10;

/// Label for a benchmark within a group (criterion's `BenchmarkId`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combine a function name with a parameter value, as `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// `true` when running under `cargo test` (`--test` flag): execute the
    /// body once, skip repeated sampling.
    smoke: bool,
    /// Mean per-iteration wall time over all samples, when measuring.
    mean: Option<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly and record its mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            black_box(routine());
            return;
        }
        // One warm-up call, then timed samples of one call each.
        black_box(routine());
        let mut total = Duration::ZERO;
        for _ in 0..MEASURE_SAMPLES {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
        }
        self.mean = Some(total / MEASURE_SAMPLES as u32);
    }
}

/// The benchmark driver (criterion's `Criterion`).
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    fn run_one(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            smoke: self.smoke,
            mean: None,
        };
        f(&mut bencher);
        match bencher.mean {
            Some(mean) => println!("{label:<48} {mean:>12.2?}/iter"),
            None if self.smoke => println!("{label:<48} ok (smoke)"),
            None => println!("{label:<48} (no measurement)"),
        }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmark a single closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = id.into().label;
        self.run_one(&label, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim's sample count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// End the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("square", 7u32), &7u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_groups() {
        // Exercise both smoke and measurement paths.
        benches();
        let mut c = Criterion { smoke: true };
        sample_bench(&mut c);
        let mut c = Criterion { smoke: false };
        c.bench_function("plain", |b| b.iter(|| black_box(2 * 2)));
    }
}
