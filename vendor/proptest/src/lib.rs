//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest's API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`Just`], `any::<T>()`, the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]` header) and
//! the `prop_assume!` / `prop_assert!` family.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! * **no shrinking** — a failing case panics with the ordinary assert
//!   message; the RNG is seeded deterministically from the test name, so
//!   failures reproduce exactly on re-run;
//! * rejected cases (`prop_assume!`) are retried and do not count toward
//!   `ProptestConfig::cases`, with a generous cap to catch assume-everything
//!   bugs.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// RNG seeded from a test's name (FNV-1a), so every test gets a stable
    /// stream independent of execution order.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(hash)
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Marker returned (via `Err`) by `prop_assume!` when a generated case does
/// not satisfy the test's preconditions.
#[derive(Debug)]
pub struct TestCaseReject;

/// Runner configuration; only the case count is honoured by this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running exactly `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (proptest's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Build a second strategy from each generated value and draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy yielding a fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.gen_value(rng)).gen_value(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

impl_range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Types with a canonical whole-domain strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's full domain; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// `Range<usize>` (half-open, like proptest).
    pub trait SizeRange {
        /// `(min, max)` half-open bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end)
        }
    }

    /// Strategy producing `Vec`s of `element`-generated values; see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max - self.min <= 1 {
                self.min
            } else {
                self.min + rng.below((self.max - self.min) as u64) as usize
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Vectors whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// The names `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Reject the current case; it is regenerated and not counted.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// Assert within a property (plain `assert!`; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { ::std::assert!($($args)+) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { ::std::assert_eq!($($args)+) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { ::std::assert_ne!($($args)+) };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     /// doc comments survive
///     #[test]
///     fn my_prop(x in 0u32..100, v in proptest::collection::vec(any::<bool>(), 0..8)) {
///         prop_assume!(x > 0);
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while accepted < config.cases {
                attempts += 1;
                ::std::assert!(
                    attempts <= max_attempts,
                    "prop_assume! rejected too many cases in {}",
                    stringify!($name)
                );
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseReject> = (|| {
                    $(let $pat = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, Vec<bool>)> {
        (1u32..50).prop_flat_map(|n| (Just(n), crate::collection::vec(any::<bool>(), 0..8)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5, z in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-2.5..2.5).contains(&z));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u32..10, 2..6), exact in crate::collection::vec(any::<bool>(), 4usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn flat_map_links_values((n, v) in arb_pair()) {
            prop_assert!((1..50).contains(&n));
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
