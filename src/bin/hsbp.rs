//! `hsbp` — command-line community detection.
//!
//! ```text
//! hsbp detect  --input graph.mtx [--variant sbp|asbp|hsbp] [--seed N]
//!              [--output labels.tsv] [--restarts N]
//!              [--deadline SECS] [--max-sweeps N]
//!              [--audit-cadence N] [--strict-audit true]
//! hsbp shard   --input graph.mtx [--shards K] [--strategy rr|degree|file]
//!              [--parts graph.part.K] [--seed N] [--compare true]
//!              [--max-retries N] [--shard-timeout SECS] [--fault-plan SPEC]
//!              [--audit-cadence N] [--strict-audit true]
//!              [--checkpoint DIR | --resume DIR] [--output labels.tsv]
//! hsbp shard   --exact true --input graph.mtx [--shards K] [--seed N]
//!              [--sync-every N] [--digest-every N] [--sync-retries N]
//!              [--net-fault-plan SPEC] [--compare true] [--output labels.tsv]
//! hsbp stats   --input graph.mtx
//! hsbp generate --vertices N --edges M [--communities C] [--ratio R]
//!              [--seed K] --output graph.mtx [--truth truth.tsv]
//! hsbp serve   [--addr HOST:PORT] [--input graph.mtx] [--seed N]
//!              [--variant sbp|asbp|hsbp] [--max-sweeps N] [--deadline SECS]
//!              [--audit-cadence N] [--strict-audit true]
//!              [--refine-pause-ms N]
//!              [--state-dir DIR] [--fsync always|batch|never]
//!              [--snapshot-every N] [--max-pending N] [--max-connections N]
//!              [--idle-timeout-ms N] [--fault-plan SPEC]
//! hsbp version
//! ```
//!
//! `detect` reads a Matrix Market (`.mtx`) or whitespace edge-list file,
//! runs the chosen SBP variant (default: H-SBP) with the best-of-restarts
//! protocol, and writes one `vertex<TAB>community` line per vertex.
//!
//! `--deadline` and `--max-sweeps` put the whole `detect` invocation under
//! a run budget shared across restarts: the run stops cooperatively when
//! the wall-clock deadline or total-sweep cap is reached and the
//! best-so-far labels are still written, with exit code 8 marking the
//! truncation. `--audit-cadence N` audits the incremental blockmodel
//! against a from-scratch rebuild every N sweeps (default 64, 0 disables),
//! repairing any drift it finds; `--strict-audit true` turns detected
//! drift into a failure (exit code 7) instead. `--inject-drift N`
//! deliberately corrupts the incremental state at sweep N (a test hook for
//! the auditor).
//!
//! `shard` runs the sharded divide-and-conquer pipeline (partition →
//! supervised per-shard SBP → stitch → H-SBP finetune), reporting cut
//! fraction, per-shard block counts, supervision outcomes and the emulated
//! distributed-rank scaling curve; `--compare true` also runs single-model
//! SBP and reports the NMI between the two partitions. `--fault-plan`
//! injects deterministic faults (e.g. `panic:0@1,panic:2@*`; see
//! `hsbp::shard::faults`), `--checkpoint DIR` persists each completed shard
//! so `--resume DIR` can pick an interrupted run back up.
//!
//! `shard --exact true` switches to the exact distributed mode: every
//! shard samples its vertex range against a replicated global blockmodel
//! and broadcasts accepted-move deltas as checksummed, sequence-numbered
//! messages each sync round, so the sampled chain is bit-identical to the
//! single-model EA-SBP run. `--net-fault-plan` injects deterministic wire
//! faults (`seed:N, drop:P, dup:P, reorder:P, corrupt:P, delay:P=R,
//! silent:SHARD@ROUND, desync:SHARD@ROUND`); recovery (NACK-driven
//! retransmit, digest-verified resync, majority-vote reassignment of dead
//! shards' vertices) happens inside the round barrier. `--sync-every N`
//! batches N sweeps per sync round, `--digest-every N` sets the replica
//! digest-exchange cadence, `--sync-retries N` bounds retransmit attempts
//! before a shard is declared dead.
//!
//! `serve` starts the resident community-detection daemon (`hsbp-serve`):
//! a TCP server speaking line-delimited JSON that owns the graph, answers
//! reads from an epoch-swapped snapshot, and re-detects incrementally after
//! every mutation batch. `--max-sweeps` / `--deadline` budget each
//! refinement round; `--input` seeds the initial graph (default: empty).
//! The daemon stops cleanly on SIGTERM/SIGINT or a `{"op":"quit"}` message.
//! With `--state-dir DIR` every accepted batch is appended to a write-ahead
//! log before its acknowledgement (`--fsync` picks the durability/latency
//! trade-off), snapshots are persisted every `--snapshot-every` applied
//! batches and at clean shutdown, and a restart from the same directory
//! warm-starts (snapshot + WAL tail replay; `status` reports
//! `recovered_epoch` and `replayed_batches`). `--max-pending` bounds the
//! mutation backlog (over-limit batches get a typed `busy` error),
//! `--max-connections` / `--idle-timeout-ms` bound connections, and
//! `--fault-plan` injects deterministic durability faults
//! (`crash-after-wal:SEQ`, `torn-write:SEQ`, `crash-before-rename:NTH`,
//! `slow-apply:SEQ=MS`) for crash-recovery testing.
//!
//! Failures exit with a one-line diagnostic and a distinct code:
//! 2 = usage / invalid flags, 3 = unreadable graph, 4 = bad partition file,
//! 5 = checkpoint error, 6 = run failed (e.g. every shard lost),
//! 7 = state drift under `--strict-audit`, 8 = run truncated by its budget
//! (labels were still written), 9 = network failure (bind/accept/socket).

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::graph::io::{load_path, write_matrix_market};
use hsbp::graph::partition::read_partition_file;
use hsbp::graph::GraphStats;
use hsbp::metrics::{directed_modularity, nmi, normalized_mdl};
use hsbp::serve::{ServeConfig, Server};
use hsbp::shard::{run_sharded_sbp_detailed, run_sharded_sbp_resumable, ShardStatus};
use hsbp::{
    run_exact_sbp, run_sbp, run_sbp_budgeted, CancelToken, ExactConfig, FaultPlan, HsbpError,
    NetFaultPlan, PartitionStrategy, RunBudget, SbpConfig, ShardConfig, Variant,
    SYNC_PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Exit code for failures to read or parse the input graph.
const EXIT_BAD_GRAPH: u8 = 3;
/// Exit code for bad partition files (or partitions not matching the graph).
const EXIT_BAD_PARTITION: u8 = 4;
/// Exit code for checkpoint directory problems.
const EXIT_BAD_CHECKPOINT: u8 = 5;
/// Exit code for runs that failed outright (e.g. all shards lost).
const EXIT_RUN_FAILED: u8 = 6;
/// Exit code for drift detected under `--strict-audit true`.
const EXIT_STATE_DRIFT: u8 = 7;
/// Exit code for runs truncated by `--deadline` / `--max-sweeps`; the
/// best-so-far labels were still written.
const EXIT_BUDGET_TRUNCATED: u8 = 8;
/// Exit code for network failures (bind, accept, mid-request socket death).
const EXIT_NETWORK: u8 = 9;

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "usage:\n  hsbp detect --input FILE [--variant sbp|asbp|hsbp] [--seed N] \\\n\
         \x20             [--restarts N] [--output FILE] \\\n\
         \x20             [--deadline SECS] [--max-sweeps N] \\\n\
         \x20             [--math-mode exact|table] \\\n\
         \x20             [--audit-cadence N] [--strict-audit true]\n\
         \x20 hsbp shard --input FILE [--shards K] [--strategy rr|degree|file] \\\n\
         \x20             [--parts FILE] [--seed N] [--compare true] \\\n\
         \x20             [--max-retries N] [--shard-timeout SECS] [--fault-plan SPEC] \\\n\
         \x20             [--audit-cadence N] [--strict-audit true] \\\n\
         \x20             [--checkpoint DIR | --resume DIR] [--output FILE]\n\
         \x20 hsbp shard --exact true --input FILE [--shards K] [--seed N] \\\n\
         \x20             [--sync-every N] [--digest-every N] [--sync-retries N] \\\n\
         \x20             [--net-fault-plan SPEC] [--compare true] \\\n\
         \x20             [--audit-cadence N] [--strict-audit true] [--output FILE]\n\
         \x20 hsbp stats --input FILE\n\
         \x20 hsbp generate --vertices N --edges M [--communities C] [--ratio R] \\\n\
         \x20             [--seed N] --output FILE [--truth FILE]\n\
         \x20 hsbp serve [--addr HOST:PORT] [--input FILE] [--seed N] \\\n\
         \x20             [--variant sbp|asbp|hsbp] [--max-sweeps N] [--deadline SECS] \\\n\
         \x20             [--audit-cadence N] [--strict-audit true] [--refine-pause-ms N] \\\n\
         \x20             [--state-dir DIR] [--fsync always|batch|never] \\\n\
         \x20             [--snapshot-every N] [--max-pending N] [--max-connections N] \\\n\
         \x20             [--idle-timeout-ms N] [--fault-plan SPEC]\n\
         \x20 hsbp version"
    );
    ExitCode::from(2)
}

/// Reject flags the subcommand does not understand (typos should fail
/// loudly, not be silently ignored).
fn check_flags(flags: &HashMap<String, String>, allowed: &[&str]) -> Result<(), String> {
    for name in flags.keys() {
        if !allowed.contains(&name.as_str()) {
            return Err(format!("unknown flag `--{name}`"));
        }
    }
    Ok(())
}

/// Map a pipeline error to its one-line diagnostic and exit code.
fn report_error(e: &HsbpError) -> ExitCode {
    eprintln!("error: {e}");
    let code = match e {
        HsbpError::InvalidConfig(_) => 2,
        HsbpError::Io { .. } => EXIT_BAD_GRAPH,
        HsbpError::PartitionMismatch { .. } => EXIT_BAD_PARTITION,
        HsbpError::Checkpoint { .. } | HsbpError::Wal { .. } => EXIT_BAD_CHECKPOINT,
        HsbpError::StateDrift { .. } => EXIT_STATE_DRIFT,
        HsbpError::Network { .. } => EXIT_NETWORK,
        HsbpError::ShardFailed { .. }
        | HsbpError::AllShardsFailed { .. }
        | HsbpError::InvariantViolation { .. } => EXIT_RUN_FAILED,
    };
    ExitCode::from(code)
}

/// Apply the shared `--audit-cadence` / `--strict-audit` / `--inject-drift`
/// flags to an [`SbpConfig`].
fn apply_audit_flags(flags: &HashMap<String, String>, cfg: &mut SbpConfig) -> Result<(), String> {
    if let Some(s) = flags.get("audit-cadence") {
        cfg.audit_cadence = s
            .parse()
            .map_err(|_| "--audit-cadence needs a non-negative integer (0 disables)".to_string())?;
    }
    match flags.get("strict-audit").map(String::as_str) {
        None => {}
        Some("true") => cfg.strict_audit = true,
        Some("false") => cfg.strict_audit = false,
        Some(other) => return Err(format!("--strict-audit needs true or false, got `{other}`")),
    }
    if let Some(s) = flags.get("inject-drift") {
        cfg.inject_drift_at_sweep = Some(
            s.parse()
                .map_err(|_| "--inject-drift needs a sweep number".to_string())?,
        );
    }
    Ok(())
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage("");
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => return usage(&e),
    };
    match command.as_str() {
        "detect" => detect(&flags),
        "shard" => shard_cmd(&flags),
        "stats" => stats(&flags),
        "generate" => generate_cmd(&flags),
        "serve" => serve_cmd(&flags),
        "version" => version_cmd(&flags),
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn detect(flags: &HashMap<String, String>) -> ExitCode {
    if let Err(e) = check_flags(
        flags,
        &[
            "input",
            "variant",
            "seed",
            "restarts",
            "output",
            "deadline",
            "max-sweeps",
            "math-mode",
            "audit-cadence",
            "strict-audit",
            "inject-drift",
        ],
    ) {
        return usage(&e);
    }
    let Some(input) = flags.get("input") else {
        return usage("detect requires --input");
    };
    let variant = match flags.get("variant").map(String::as_str) {
        None | Some("hsbp") => Variant::Hybrid,
        Some("sbp") => Variant::Metropolis,
        Some("asbp") => Variant::AsyncGibbs,
        Some(other) => return usage(&format!("unknown variant `{other}`")),
    };
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| s.parse()).unwrap_or(0);
    let restarts: usize = flags
        .get("restarts")
        .map_or(Ok(1), |s| s.parse())
        .unwrap_or(1);
    let deadline: Option<Duration> = match flags.get("deadline").map(|s| s.parse::<f64>()) {
        None => None,
        Some(Ok(t)) if t.is_finite() && t > 0.0 => Some(Duration::from_secs_f64(t)),
        Some(_) => return usage("--deadline needs a positive number of seconds"),
    };
    let max_sweeps: Option<usize> = match flags.get("max-sweeps").map(|s| s.parse::<usize>()) {
        None => None,
        Some(Ok(n)) if n > 0 => Some(n),
        Some(_) => return usage("--max-sweeps needs a positive integer"),
    };
    // Defaults to the HSBP_MATH env var (exact when unset); the flag wins.
    let math_mode: hsbp::MathMode = match flags.get("math-mode") {
        None => hsbp::MathMode::from_env(),
        Some(s) => match hsbp::MathMode::parse(s) {
            Some(m) => m,
            None => return usage(&format!("--math-mode needs exact or table, got `{s}`")),
        },
    };

    let graph = match load_path(input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot load {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {}: {} vertices, {} edges; running {} ({} restart(s))",
        input,
        graph.num_vertices(),
        graph.num_edges(),
        variant.name(),
        restarts.max(1)
    );

    // The deadline and sweep cap are *overall* budgets, shared across
    // restarts: each restart runs under whatever is left of them.
    let started = Instant::now();
    let token = CancelToken::new();
    let mut sweeps_left = max_sweeps;
    let mut best: Option<hsbp::SbpResult> = None;
    let mut truncated = false;
    for restart in 0..restarts.max(1) {
        let mut budget = RunBudget::unlimited();
        if let Some(total) = deadline {
            let remaining = total.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                truncated = true;
                eprintln!("deadline reached; skipping remaining restart(s)");
                break;
            }
            budget = budget.with_deadline(remaining);
        }
        if let Some(left) = sweeps_left {
            if left == 0 {
                truncated = true;
                eprintln!("sweep budget exhausted; skipping remaining restart(s)");
                break;
            }
            budget = budget.with_max_total_sweeps(left);
        }
        let mut cfg = SbpConfig::new(variant, seed.wrapping_add(restart as u64 * 7919));
        cfg.math_mode = math_mode;
        if let Err(e) = apply_audit_flags(flags, &mut cfg) {
            return usage(&e);
        }
        let result = match run_sbp_budgeted(&graph, &cfg, &budget, &token) {
            Ok(r) => r,
            Err(e) => return report_error(&e),
        };
        if let Some(left) = sweeps_left.as_mut() {
            *left = left.saturating_sub(result.stats.mcmc_sweeps);
        }
        if result.truncated() {
            truncated = true;
            eprintln!(
                "restart {restart}: stopped early ({})",
                result.stats.stop_cause
            );
        }
        if best.as_ref().is_none_or(|b| result.mdl.total < b.mdl.total) {
            best = Some(result);
        }
    }
    let Some(result) = best else {
        // Unreachable in practice: the first restart always runs (its
        // budget is checked non-zero above) and returns best-so-far.
        eprintln!("error: budget exhausted before any restart produced a result");
        return ExitCode::from(EXIT_BUDGET_TRUNCATED);
    };
    eprintln!(
        "found {} communities  MDL {:.1}  MDL_norm {:.4}  modularity {:.4}  ({} MCMC sweeps)",
        result.num_blocks,
        result.mdl.total,
        normalized_mdl(&graph, &result.assignment),
        directed_modularity(&graph, &result.assignment),
        result.stats.mcmc_sweeps
    );
    if result.stats.audits_run > 0 {
        eprintln!(
            "audits: {} run, {} drift event(s) detected and repaired",
            result.stats.audits_run,
            result.stats.drift_events.len()
        );
    }

    let write_result = || -> std::io::Result<()> {
        match flags.get("output") {
            Some(path) => {
                let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
                for (v, b) in result.assignment.iter().enumerate() {
                    writeln!(f, "{v}\t{b}")?;
                }
                f.flush()?;
                eprintln!("labels written to {path}");
                Ok(())
            }
            None => {
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                for (v, b) in result.assignment.iter().enumerate() {
                    writeln!(lock, "{v}\t{b}")?;
                }
                Ok(())
            }
        }
    };
    if let Err(e) = write_result() {
        eprintln!("cannot write labels: {e}");
        return ExitCode::FAILURE;
    }
    if truncated {
        eprintln!("run truncated by its budget; labels are the best-so-far state");
        return ExitCode::from(EXIT_BUDGET_TRUNCATED);
    }
    ExitCode::SUCCESS
}

fn shard_cmd(flags: &HashMap<String, String>) -> ExitCode {
    if let Err(e) = check_flags(
        flags,
        &[
            "input",
            "shards",
            "strategy",
            "parts",
            "seed",
            "compare",
            "output",
            "max-retries",
            "shard-timeout",
            "fault-plan",
            "audit-cadence",
            "strict-audit",
            "checkpoint",
            "resume",
            "exact",
            "sync-every",
            "digest-every",
            "net-fault-plan",
            "sync-retries",
        ],
    ) {
        return usage(&e);
    }
    match flags.get("exact").map(String::as_str) {
        None | Some("false") => {}
        Some("true") => return exact_shard_cmd(flags),
        Some(other) => return usage(&format!("--exact needs true or false, got `{other}`")),
    }
    for exact_only in [
        "sync-every",
        "digest-every",
        "net-fault-plan",
        "sync-retries",
    ] {
        if flags.contains_key(exact_only) {
            return usage(&format!("--{exact_only} requires --exact true"));
        }
    }
    let Some(input) = flags.get("input") else {
        return usage("shard requires --input");
    };
    let shards: usize = flags
        .get("shards")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(0);
    let compare = flags.get("compare").map(String::as_str) == Some("true");
    let max_retries: usize = match flags.get("max-retries").map(|s| s.parse()) {
        None => 2,
        Some(Ok(n)) => n,
        Some(Err(_)) => return usage("--max-retries needs a non-negative integer"),
    };
    let shard_timeout: Option<f64> = match flags.get("shard-timeout").map(|s| s.parse::<f64>()) {
        None => None,
        Some(Ok(t)) if t.is_finite() && t > 0.0 => Some(t),
        Some(_) => return usage("--shard-timeout needs a positive number of seconds"),
    };
    let fault_plan = match flags.get("fault-plan") {
        None => FaultPlan::none(),
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(plan) => plan,
            Err(e) => return usage(&format!("bad --fault-plan: {e}")),
        },
    };
    let run_dir = match (flags.get("checkpoint"), flags.get("resume")) {
        (Some(a), Some(b)) if a != b => {
            return usage("--checkpoint and --resume name different directories; pick one");
        }
        (_, Some(dir)) => {
            if !std::path::Path::new(dir).join("meta.txt").is_file() {
                eprintln!("error: checkpoint {dir}: not a checkpoint directory (no meta.txt)");
                return ExitCode::from(EXIT_BAD_CHECKPOINT);
            }
            Some(dir.clone())
        }
        (Some(dir), None) => Some(dir.clone()),
        (None, None) => None,
    };
    let strategy = match flags.get("strategy").map(String::as_str) {
        None | Some("degree") => PartitionStrategy::DegreeBalanced,
        Some("rr") | Some("round-robin") => PartitionStrategy::RoundRobin,
        Some("file") => {
            let Some(path) = flags.get("parts") else {
                return usage("--strategy file requires --parts");
            };
            match read_partition_file(path) {
                Ok(parts) => PartitionStrategy::FromParts(parts),
                Err(e) => {
                    eprintln!("error: cannot load partition {path}: {e}");
                    return ExitCode::from(EXIT_BAD_PARTITION);
                }
            }
        }
        Some(other) => return usage(&format!("unknown strategy `{other}`")),
    };

    let graph = match load_path(input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: cannot load {input}: {e}");
            return ExitCode::from(EXIT_BAD_GRAPH);
        }
    };
    let mut sbp_cfg = SbpConfig {
        seed,
        ..Default::default()
    };
    if let Err(e) = apply_audit_flags(flags, &mut sbp_cfg) {
        return usage(&e);
    }
    let mut cfg = ShardConfig {
        num_shards: shards,
        strategy,
        sbp: sbp_cfg,
        ..Default::default()
    };
    cfg.supervision.max_retries = max_retries;
    cfg.supervision.shard_timeout = shard_timeout;
    cfg.supervision.fault_plan = fault_plan;
    eprintln!(
        "loaded {}: {} vertices, {} edges; sharded SBP over {} shard(s)",
        input,
        graph.num_vertices(),
        graph.num_edges(),
        shards
    );
    let run = match &run_dir {
        Some(dir) => run_sharded_sbp_resumable(&graph, &cfg, dir),
        None => run_sharded_sbp_detailed(&graph, &cfg),
    };
    let run = match run {
        Ok(run) => run,
        Err(e) => return report_error(&e),
    };
    for (s, summary) in run.shard_summaries.iter().enumerate() {
        let outcome = &run.outcomes[s];
        let status = match outcome.status {
            ShardStatus::Ok => String::new(),
            ShardStatus::Recovered => {
                format!("  [recovered after {} attempt(s)]", outcome.attempts)
            }
            ShardStatus::Dropped => format!("  [DROPPED after {} attempt(s)]", outcome.attempts),
            ShardStatus::Resumed => "  [resumed from checkpoint]".to_string(),
        };
        eprintln!(
            "  shard {s}: {} vertices, {} edges -> {} blocks (MDL {:.1}){status}",
            summary.num_vertices, summary.num_edges, summary.num_blocks, summary.mdl_total
        );
        for failure in &outcome.failures {
            eprintln!("    attempt {}: {}", failure.attempt, failure.kind);
        }
    }
    if run.degraded() {
        eprintln!(
            "WARNING: degraded run — {} vertices of dropped shard(s) were reassigned by \
             majority vote; quality and scaling figures below describe the degraded run",
            run.stitch.reassigned_vertices
        );
    }
    eprintln!(
        "cut fraction {:.3}; stitched {} -> {} blocks in {} step(s), {} finetune sweep(s)",
        run.cut_fraction,
        run.stitch.blocks_stitched,
        run.stitch.blocks_final,
        run.stitch.steps,
        run.stitch.finetune_sweeps
    );
    if run.scaling.mixed_basis() {
        eprintln!(
            "WARNING: shards {:?} report wall-clock cost while others report simulated cost; \
             the scales are incommensurable, so emulated speedups are suppressed",
            run.scaling.wall_clock_shards()
        );
    }
    for &(ranks, t) in &run.scaling.curve {
        match run.scaling.speedup(ranks) {
            Some(speedup) => {
                eprintln!("  emulated {ranks} rank(s): makespan {t:.3e}  speedup {speedup:.2}x")
            }
            None => eprintln!("  emulated {ranks} rank(s): makespan {t:.3e}  speedup n/a"),
        }
    }
    let result = &run.result;
    eprintln!(
        "found {} communities  MDL {:.1}  MDL_norm {:.4}  modularity {:.4}",
        result.num_blocks,
        result.mdl.total,
        result.normalized_mdl,
        directed_modularity(&graph, &result.assignment)
    );
    if compare {
        let single = run_sbp(
            &graph,
            &SbpConfig {
                seed,
                ..Default::default()
            },
        );
        eprintln!(
            "single-model: {} communities  MDL {:.1}  NMI(sharded, single) {:.4}",
            single.num_blocks,
            single.mdl.total,
            nmi(&single.assignment, &result.assignment)
        );
    }

    let write_result = || -> std::io::Result<()> {
        if let Some(path) = flags.get("output") {
            let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
            for (v, b) in result.assignment.iter().enumerate() {
                writeln!(f, "{v}\t{b}")?;
            }
            f.flush()?;
            eprintln!("labels written to {path}");
        }
        Ok(())
    };
    if let Err(e) = write_result() {
        eprintln!("cannot write labels: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `hsbp shard --exact true`: the exact distributed mode — vertex-range
/// shards over a replicated global blockmodel with fault-tolerant delta
/// sync, instead of the divide-and-conquer pipeline.
fn exact_shard_cmd(flags: &HashMap<String, String>) -> ExitCode {
    for incompatible in [
        "strategy",
        "parts",
        "max-retries",
        "shard-timeout",
        "fault-plan",
        "checkpoint",
        "resume",
    ] {
        if flags.contains_key(incompatible) {
            return usage(&format!(
                "--{incompatible} applies to the divide-and-conquer pipeline, not --exact true \
                 (the exact mode takes --net-fault-plan / --sync-retries / --sync-every)"
            ));
        }
    }
    let Some(input) = flags.get("input") else {
        return usage("shard requires --input");
    };
    let shards: usize = flags
        .get("shards")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(0);
    let compare = flags.get("compare").map(String::as_str) == Some("true");
    let sync_every: usize = match flags.get("sync-every").map(|s| s.parse()) {
        None => 1,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => return usage("--sync-every needs a positive integer"),
    };
    let digest_every: usize = match flags.get("digest-every").map(|s| s.parse()) {
        None => 8,
        Some(Ok(n)) => n,
        Some(Err(_)) => return usage("--digest-every needs a non-negative integer (0 disables)"),
    };
    let sync_retries: usize = match flags.get("sync-retries").map(|s| s.parse()) {
        None => 5,
        Some(Ok(n)) => n,
        Some(Err(_)) => return usage("--sync-retries needs a non-negative integer"),
    };
    let net_faults = match flags.get("net-fault-plan") {
        None => NetFaultPlan::none(),
        Some(spec) => match NetFaultPlan::parse(spec) {
            Ok(plan) => plan,
            Err(e) => return usage(&format!("bad --net-fault-plan: {e}")),
        },
    };
    let graph = match load_path(input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: cannot load {input}: {e}");
            return ExitCode::from(EXIT_BAD_GRAPH);
        }
    };
    let mut sbp = SbpConfig {
        seed,
        ..Default::default()
    };
    if let Err(e) = apply_audit_flags(flags, &mut sbp) {
        return usage(&e);
    }
    let cfg = ExactConfig {
        num_shards: shards,
        sbp,
        sync_every,
        digest_every,
        max_retries: sync_retries,
        net_faults,
    };
    eprintln!(
        "loaded {}: {} vertices, {} edges; exact distributed SBP over {} shard(s), \
         delta sync every {} sweep(s)",
        input,
        graph.num_vertices(),
        graph.num_edges(),
        shards,
        sync_every
    );
    let run = match run_exact_sbp(&graph, &cfg) {
        Ok(run) => run,
        Err(e) => return report_error(&e),
    };
    for dead in &run.dead_shards {
        eprintln!(
            "WARNING: shard {} declared dead at round {} (retry budget exhausted); \
             {} vertices reassigned by majority vote",
            dead.shard, dead.round, dead.reassigned_vertices
        );
    }
    if run.degraded() {
        eprintln!(
            "WARNING: degraded run — {} of {} shard(s) survived; quality figures below \
             describe the degraded run",
            run.num_shards - run.dead_shards.len(),
            run.num_shards
        );
    }
    let net = &run.net;
    let rounds = run.rounds.len().max(1) as u64;
    eprintln!(
        "sync protocol: {} round(s), {} message(s), {} bytes ({} bytes/round), \
         {} retransmit(s), {} NACK(s), {} resync(s)",
        run.rounds.len(),
        net.messages,
        net.bytes,
        net.bytes / rounds,
        net.retransmits,
        net.nacks,
        net.resyncs
    );
    if net.dropped + net.duplicated + net.corrupted + net.delayed + net.reordered > 0 {
        eprintln!(
            "  faults survived: {} dropped, {} duplicated, {} corrupted ({} detected), \
             {} delayed, {} reordered, {} replays ignored",
            net.dropped,
            net.duplicated,
            net.corrupted,
            net.corrupt_detected,
            net.delayed,
            net.reordered,
            net.replays_ignored
        );
    }
    let result = &run.result;
    eprintln!(
        "found {} communities  MDL {:.1}  MDL_norm {:.4}  modularity {:.4}  ({} MCMC sweeps)",
        result.num_blocks,
        result.mdl.total,
        result.normalized_mdl,
        directed_modularity(&graph, &result.assignment),
        result.stats.mcmc_sweeps
    );
    if compare {
        let single = run_sbp(
            &graph,
            &SbpConfig {
                variant: Variant::ExactAsync,
                exact_async_workers: shards,
                seed,
                ..Default::default()
            },
        );
        let identical = single.assignment == result.assignment;
        eprintln!(
            "single-model EA-SBP ({} workers): {} communities  MDL {:.1}  \
             NMI(exact, single) {:.4}  bit-identical: {}",
            shards,
            single.num_blocks,
            single.mdl.total,
            nmi(&single.assignment, &result.assignment),
            identical
        );
    }
    let write_result = || -> std::io::Result<()> {
        if let Some(path) = flags.get("output") {
            let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
            for (v, b) in result.assignment.iter().enumerate() {
                writeln!(f, "{v}\t{b}")?;
            }
            f.flush()?;
            eprintln!("labels written to {path}");
        }
        Ok(())
    };
    if let Err(e) = write_result() {
        eprintln!("cannot write labels: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn stats(flags: &HashMap<String, String>) -> ExitCode {
    if let Err(e) = check_flags(flags, &["input"]) {
        return usage(&e);
    }
    let Some(input) = flags.get("input") else {
        return usage("stats requires --input");
    };
    let graph = match load_path(input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot load {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let s = GraphStats::compute(&graph);
    println!("vertices            {}", s.num_vertices);
    println!("edges               {}", s.num_edges);
    println!("total weight        {}", s.total_weight);
    println!(
        "degree min/mean/max {} / {:.2} / {}",
        s.min_degree, s.mean_degree, s.max_degree
    );
    println!("density             {:.3e}", s.density);
    println!("self loops          {}", s.self_loops);
    println!("power-law exponent  {:.3}", s.power_law_exponent);
    ExitCode::SUCCESS
}

fn generate_cmd(flags: &HashMap<String, String>) -> ExitCode {
    if let Err(e) = check_flags(
        flags,
        &[
            "vertices",
            "edges",
            "communities",
            "ratio",
            "seed",
            "output",
            "truth",
        ],
    ) {
        return usage(&e);
    }
    let parse = |key: &str| flags.get(key).and_then(|s| s.parse::<usize>().ok());
    let (Some(vertices), Some(edges), Some(output)) =
        (parse("vertices"), parse("edges"), flags.get("output"))
    else {
        return usage("generate requires --vertices, --edges and --output");
    };
    let communities =
        parse("communities").unwrap_or_else(|| ((vertices as f64).sqrt() / 2.0) as usize);
    let ratio: f64 = flags
        .get("ratio")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.5);
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(0);

    let data = generate(DcsbmConfig {
        num_vertices: vertices,
        num_communities: communities.clamp(1, vertices),
        target_num_edges: edges,
        within_between_ratio: ratio,
        seed,
        ..Default::default()
    });
    let write = || -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(output)?);
        write_matrix_market(&data.graph, &mut f)?;
        f.flush()?;
        if let Some(truth_path) = flags.get("truth") {
            let mut f = std::io::BufWriter::new(std::fs::File::create(truth_path)?);
            for (v, b) in data.ground_truth.iter().enumerate() {
                writeln!(f, "{v}\t{b}")?;
            }
            f.flush()?;
        }
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("cannot write output: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {} ({} vertices, {} edges, {} communities, r = {ratio})",
        output,
        data.graph.num_vertices(),
        data.graph.num_edges(),
        communities
    );
    ExitCode::SUCCESS
}

/// Set by the SIGTERM/SIGINT handler; polled by the `serve` wait loop.
static SIGNALLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Install SIGTERM/SIGINT handlers that request an orderly daemon stop.
/// Raw `signal(2)` FFI: the build is dependency-free by policy (no libc
/// crate), and storing to an `AtomicBool` is async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn serve_cmd(flags: &HashMap<String, String>) -> ExitCode {
    if let Err(e) = check_flags(
        flags,
        &[
            "addr",
            "input",
            "seed",
            "variant",
            "max-sweeps",
            "deadline",
            "audit-cadence",
            "strict-audit",
            "inject-drift",
            "refine-pause-ms",
            "state-dir",
            "fsync",
            "snapshot-every",
            "max-pending",
            "max-connections",
            "idle-timeout-ms",
            "fault-plan",
        ],
    ) {
        return usage(&e);
    }
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7474".to_string());
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(0);
    let variant = match flags.get("variant").map(String::as_str) {
        None | Some("hsbp") => Variant::Hybrid,
        Some("sbp") => Variant::Metropolis,
        Some("asbp") => Variant::AsyncGibbs,
        Some(other) => return usage(&format!("unknown variant `{other}`")),
    };
    let mut budget = RunBudget::unlimited();
    match flags.get("max-sweeps").map(|s| s.parse::<usize>()) {
        None => {}
        Some(Ok(n)) if n > 0 => budget = budget.with_max_total_sweeps(n),
        Some(_) => return usage("--max-sweeps needs a positive integer"),
    }
    match flags.get("deadline").map(|s| s.parse::<f64>()) {
        None => {}
        Some(Ok(t)) if t.is_finite() && t > 0.0 => {
            budget = budget.with_deadline(Duration::from_secs_f64(t))
        }
        Some(_) => return usage("--deadline needs a positive number of seconds"),
    }
    let refine_pause_ms: u64 = match flags.get("refine-pause-ms").map(|s| s.parse()) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => return usage("--refine-pause-ms needs a non-negative integer"),
    };
    let defaults = ServeConfig::default();
    let state_dir = flags.get("state-dir").map(std::path::PathBuf::from);
    let fsync = match flags.get("fsync") {
        None => defaults.fsync,
        Some(spec) => match hsbp::serve::FsyncPolicy::parse(spec) {
            Ok(p) => p,
            Err(e) => return usage(&format!("bad --fsync: {e}")),
        },
    };
    let parse_count = |name: &str, default: u64| -> Result<u64, String> {
        match flags.get(name).map(|s| s.parse()) {
            None => Ok(default),
            Some(Ok(n)) => Ok(n),
            Some(Err(_)) => Err(format!("--{name} needs a non-negative integer")),
        }
    };
    let snapshot_every = match parse_count("snapshot-every", defaults.snapshot_every) {
        Ok(n) => n,
        Err(e) => return usage(&e),
    };
    let max_pending = match parse_count("max-pending", defaults.max_pending as u64) {
        Ok(n) => n as usize,
        Err(e) => return usage(&e),
    };
    let max_connections = match parse_count("max-connections", defaults.max_connections as u64) {
        Ok(n) => n as usize,
        Err(e) => return usage(&e),
    };
    let idle_timeout_ms = match parse_count("idle-timeout-ms", defaults.idle_timeout_ms) {
        Ok(n) => n,
        Err(e) => return usage(&e),
    };
    let fault_plan = match flags.get("fault-plan") {
        None => hsbp::serve::ServeFaultPlan::none(),
        Some(spec) => match hsbp::serve::ServeFaultPlan::parse(spec) {
            Ok(p) => p,
            Err(e) => return usage(&format!("bad --fault-plan: {e}")),
        },
    };
    if !fault_plan.is_empty() && state_dir.is_none() {
        return usage("--fault-plan targets the durability path; it needs --state-dir");
    }
    let mut sbp = SbpConfig::new(variant, seed);
    if let Err(e) = apply_audit_flags(flags, &mut sbp) {
        return usage(&e);
    }
    let initial = match flags.get("input") {
        None => hsbp::Graph::from_edges(0, &[]),
        Some(path) => match load_path(path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error: cannot load {path}: {e}");
                return ExitCode::from(EXIT_BAD_GRAPH);
            }
        },
    };
    if initial.num_vertices() > 0 {
        eprintln!(
            "initial graph: {} vertices, {} edges; running full {} detection before serving",
            initial.num_vertices(),
            initial.num_edges(),
            variant.name()
        );
    }

    install_signal_handlers();
    if let Some(dir) = &state_dir {
        eprintln!(
            "state dir: {} (fsync {}, snapshot every {} batches)",
            dir.display(),
            fsync.name(),
            snapshot_every
        );
    }
    let config = ServeConfig {
        addr,
        sbp,
        budget,
        refine_pause_ms,
        state_dir,
        fsync,
        snapshot_every,
        max_pending,
        max_connections,
        idle_timeout_ms,
        fault_plan,
        // The CLI daemon dies for real on injected crashes, so the CI
        // crash-recovery job observes an actual process death.
        hard_faults: true,
    };
    let handle = match Server::spawn(config, initial) {
        Ok(h) => h,
        Err(e) => return report_error(&e),
    };
    // The harness parses this line to find the bound (possibly ephemeral)
    // port, so it goes to stdout and is flushed immediately.
    println!("listening on {}", handle.local_addr());
    let _ = std::io::stdout().flush();

    loop {
        if SIGNALLED.load(std::sync::atomic::Ordering::Relaxed) {
            eprintln!("signal received; shutting down");
            handle.shutdown();
            break;
        }
        if handle.is_shutting_down() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.join();
    eprintln!("server stopped");
    ExitCode::SUCCESS
}

fn version_cmd(flags: &HashMap<String, String>) -> ExitCode {
    if let Err(e) = check_flags(flags, &[]) {
        return usage(&e);
    }
    println!("hsbp {}", env!("CARGO_PKG_VERSION"));
    println!(
        "math mode {} (HSBP_MATH), x·ln x table cap {} (HSBP_MATH_CAP)",
        hsbp::MathMode::from_env().name(),
        hsbp::blockmodel::fastmath::table_cap()
    );
    println!("serve protocol {}", hsbp::serve::PROTOCOL_VERSION);
    println!("shard sync protocol {SYNC_PROTOCOL_VERSION}");
    println!(
        "bench schemas: mcmc {} (BENCH_mcmc.json), serve {} (BENCH_serve.json), \
         shard {} (BENCH_shard.json)",
        hsbp::bench::hotpath::BENCH_MCMC_SCHEMA_VERSION,
        hsbp::serve::BENCH_SERVE_SCHEMA_VERSION,
        hsbp::bench::shard::BENCH_SHARD_SCHEMA_VERSION
    );
    ExitCode::SUCCESS
}
