//! `hsbp` — command-line community detection.
//!
//! ```text
//! hsbp detect  --input graph.mtx [--variant sbp|asbp|hsbp] [--seed N]
//!              [--output labels.tsv] [--restarts N]
//! hsbp shard   --input graph.mtx [--shards K] [--strategy rr|degree|file]
//!              [--parts graph.part.K] [--seed N] [--compare true]
//!              [--output labels.tsv]
//! hsbp stats   --input graph.mtx
//! hsbp generate --vertices N --edges M [--communities C] [--ratio R]
//!              [--seed K] --output graph.mtx [--truth truth.tsv]
//! ```
//!
//! `detect` reads a Matrix Market (`.mtx`) or whitespace edge-list file,
//! runs the chosen SBP variant (default: H-SBP) with the best-of-restarts
//! protocol, and writes one `vertex<TAB>community` line per vertex.
//!
//! `shard` runs the sharded divide-and-conquer pipeline (partition →
//! per-shard SBP → stitch → H-SBP finetune), reporting cut fraction,
//! per-shard block counts and the emulated distributed-rank scaling curve;
//! `--compare true` also runs single-model SBP and reports the NMI between
//! the two partitions.

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::graph::io::{load_path, write_matrix_market};
use hsbp::graph::partition::read_partition_file;
use hsbp::graph::GraphStats;
use hsbp::metrics::{directed_modularity, nmi, normalized_mdl};
use hsbp::shard::run_sharded_sbp_detailed;
use hsbp::{run_sbp, PartitionStrategy, SbpConfig, ShardConfig, Variant};
use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "usage:\n  hsbp detect --input FILE [--variant sbp|asbp|hsbp] [--seed N] \\\n\
         \x20             [--restarts N] [--output FILE]\n\
         \x20 hsbp shard --input FILE [--shards K] [--strategy rr|degree|file] \\\n\
         \x20             [--parts FILE] [--seed N] [--compare true] [--output FILE]\n\
         \x20 hsbp stats --input FILE\n\
         \x20 hsbp generate --vertices N --edges M [--communities C] [--ratio R] \\\n\
         \x20             [--seed N] --output FILE [--truth FILE]"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage("");
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => return usage(&e),
    };
    match command.as_str() {
        "detect" => detect(&flags),
        "shard" => shard_cmd(&flags),
        "stats" => stats(&flags),
        "generate" => generate_cmd(&flags),
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn detect(flags: &HashMap<String, String>) -> ExitCode {
    let Some(input) = flags.get("input") else {
        return usage("detect requires --input");
    };
    let variant = match flags.get("variant").map(String::as_str) {
        None | Some("hsbp") => Variant::Hybrid,
        Some("sbp") => Variant::Metropolis,
        Some("asbp") => Variant::AsyncGibbs,
        Some(other) => return usage(&format!("unknown variant `{other}`")),
    };
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| s.parse()).unwrap_or(0);
    let restarts: usize = flags
        .get("restarts")
        .map_or(Ok(1), |s| s.parse())
        .unwrap_or(1);

    let graph = match load_path(input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot load {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {}: {} vertices, {} edges; running {} ({} restart(s))",
        input,
        graph.num_vertices(),
        graph.num_edges(),
        variant.name(),
        restarts.max(1)
    );

    let mut best: Option<hsbp::SbpResult> = None;
    for restart in 0..restarts.max(1) {
        let cfg = SbpConfig::new(variant, seed.wrapping_add(restart as u64 * 7919));
        let result = run_sbp(&graph, &cfg);
        if best.as_ref().is_none_or(|b| result.mdl.total < b.mdl.total) {
            best = Some(result);
        }
    }
    let result = best.expect("at least one restart");
    eprintln!(
        "found {} communities  MDL {:.1}  MDL_norm {:.4}  modularity {:.4}  ({} MCMC sweeps)",
        result.num_blocks,
        result.mdl.total,
        normalized_mdl(&graph, &result.assignment),
        directed_modularity(&graph, &result.assignment),
        result.stats.mcmc_sweeps
    );

    let write_result = || -> std::io::Result<()> {
        match flags.get("output") {
            Some(path) => {
                let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
                for (v, b) in result.assignment.iter().enumerate() {
                    writeln!(f, "{v}\t{b}")?;
                }
                f.flush()?;
                eprintln!("labels written to {path}");
                Ok(())
            }
            None => {
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                for (v, b) in result.assignment.iter().enumerate() {
                    writeln!(lock, "{v}\t{b}")?;
                }
                Ok(())
            }
        }
    };
    if let Err(e) = write_result() {
        eprintln!("cannot write labels: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn shard_cmd(flags: &HashMap<String, String>) -> ExitCode {
    let Some(input) = flags.get("input") else {
        return usage("shard requires --input");
    };
    let shards: usize = flags
        .get("shards")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(0);
    let compare = flags.get("compare").map(String::as_str) == Some("true");
    let strategy = match flags.get("strategy").map(String::as_str) {
        None | Some("degree") => PartitionStrategy::DegreeBalanced,
        Some("rr") | Some("round-robin") => PartitionStrategy::RoundRobin,
        Some("file") => {
            let Some(path) = flags.get("parts") else {
                return usage("--strategy file requires --parts");
            };
            match read_partition_file(path) {
                Ok(parts) => PartitionStrategy::FromParts(parts),
                Err(e) => {
                    eprintln!("cannot load partition {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        Some(other) => return usage(&format!("unknown strategy `{other}`")),
    };

    let graph = match load_path(input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot load {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let PartitionStrategy::FromParts(parts) = &strategy {
        if parts.len() != graph.num_vertices() {
            eprintln!(
                "partition file has {} entries but {} has {} vertices",
                parts.len(),
                input,
                graph.num_vertices()
            );
            return ExitCode::FAILURE;
        }
    }
    let cfg = ShardConfig {
        num_shards: shards,
        strategy,
        sbp: SbpConfig {
            seed,
            ..Default::default()
        },
        ..Default::default()
    };
    if let Err(e) = cfg.validate() {
        eprintln!("invalid shard configuration: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "loaded {}: {} vertices, {} edges; sharded SBP over {} shard(s)",
        input,
        graph.num_vertices(),
        graph.num_edges(),
        shards
    );
    let run = run_sharded_sbp_detailed(&graph, &cfg);
    for (s, summary) in run.shard_summaries.iter().enumerate() {
        eprintln!(
            "  shard {s}: {} vertices, {} edges -> {} blocks (MDL {:.1})",
            summary.num_vertices, summary.num_edges, summary.num_blocks, summary.mdl_total
        );
    }
    eprintln!(
        "cut fraction {:.3}; stitched {} -> {} blocks in {} step(s), {} finetune sweep(s)",
        run.cut_fraction,
        run.stitch.blocks_stitched,
        run.stitch.blocks_final,
        run.stitch.steps,
        run.stitch.finetune_sweeps
    );
    for &(ranks, t) in &run.scaling.curve {
        let speedup = run.scaling.speedup(ranks).unwrap_or(1.0);
        eprintln!("  emulated {ranks} rank(s): makespan {t:.3e}  speedup {speedup:.2}x");
    }
    let result = &run.result;
    eprintln!(
        "found {} communities  MDL {:.1}  MDL_norm {:.4}  modularity {:.4}",
        result.num_blocks,
        result.mdl.total,
        result.normalized_mdl,
        directed_modularity(&graph, &result.assignment)
    );
    if compare {
        let single = run_sbp(
            &graph,
            &SbpConfig {
                seed,
                ..Default::default()
            },
        );
        eprintln!(
            "single-model: {} communities  MDL {:.1}  NMI(sharded, single) {:.4}",
            single.num_blocks,
            single.mdl.total,
            nmi(&single.assignment, &result.assignment)
        );
    }

    let write_result = || -> std::io::Result<()> {
        if let Some(path) = flags.get("output") {
            let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
            for (v, b) in result.assignment.iter().enumerate() {
                writeln!(f, "{v}\t{b}")?;
            }
            f.flush()?;
            eprintln!("labels written to {path}");
        }
        Ok(())
    };
    if let Err(e) = write_result() {
        eprintln!("cannot write labels: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn stats(flags: &HashMap<String, String>) -> ExitCode {
    let Some(input) = flags.get("input") else {
        return usage("stats requires --input");
    };
    let graph = match load_path(input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot load {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let s = GraphStats::compute(&graph);
    println!("vertices            {}", s.num_vertices);
    println!("edges               {}", s.num_edges);
    println!("total weight        {}", s.total_weight);
    println!(
        "degree min/mean/max {} / {:.2} / {}",
        s.min_degree, s.mean_degree, s.max_degree
    );
    println!("density             {:.3e}", s.density);
    println!("self loops          {}", s.self_loops);
    println!("power-law exponent  {:.3}", s.power_law_exponent);
    ExitCode::SUCCESS
}

fn generate_cmd(flags: &HashMap<String, String>) -> ExitCode {
    let parse = |key: &str| flags.get(key).and_then(|s| s.parse::<usize>().ok());
    let (Some(vertices), Some(edges), Some(output)) =
        (parse("vertices"), parse("edges"), flags.get("output"))
    else {
        return usage("generate requires --vertices, --edges and --output");
    };
    let communities =
        parse("communities").unwrap_or_else(|| ((vertices as f64).sqrt() / 2.0) as usize);
    let ratio: f64 = flags
        .get("ratio")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.5);
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(0);

    let data = generate(DcsbmConfig {
        num_vertices: vertices,
        num_communities: communities.clamp(1, vertices),
        target_num_edges: edges,
        within_between_ratio: ratio,
        seed,
        ..Default::default()
    });
    let write = || -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(output)?);
        write_matrix_market(&data.graph, &mut f)?;
        f.flush()?;
        if let Some(truth_path) = flags.get("truth") {
            let mut f = std::io::BufWriter::new(std::fs::File::create(truth_path)?);
            for (v, b) in data.ground_truth.iter().enumerate() {
                writeln!(f, "{v}\t{b}")?;
            }
            f.flush()?;
        }
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("cannot write output: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {} ({} vertices, {} edges, {} communities, r = {ratio})",
        output,
        data.graph.num_vertices(),
        data.graph.num_edges(),
        communities
    );
    ExitCode::SUCCESS
}
