//! # hsbp — Hybrid Stochastic Block Partitioning
//!
//! A Rust implementation of MCMC-based community detection via stochastic
//! block partitioning, reproducing *"On the Parallelization of MCMC for
//! Community Detection"* (Wanye, Gleyzer, Kao, Feng — ICPP 2022): the serial
//! SBP baseline, the asynchronous-Gibbs **A-SBP** variant, and the hybrid
//! **H-SBP** algorithm that processes influential high-degree vertices
//! serially and the rest in parallel.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | directed CSR multigraph, Matrix Market / edge-list I/O, statistics |
//! | [`generator`] | DCSBM graph sampler + the paper's dataset catalogs |
//! | [`blockmodel`] | DCSBM state, MDL (Eqs. 1–2), delta-MDL, MH proposals |
//! | [`metrics`] | NMI, directed modularity, normalized MDL, correlation |
//! | [`timing`] | wall-clock phase timers + simulated-thread cost model |
//! | [`collections`] | fast hashing, weighted sampling, sparse rows |
//! | [`shard`] | sharded divide-and-conquer SBP (partition → supervised per-shard SBP → stitch → finetune), exact distributed SBP (replicated blockmodel + fault-tolerant delta sync), fault injection, checkpoint/resume |
//!
//! with the most-used items (the SBP runner and its configuration) lifted to
//! the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use hsbp::{run_sbp, SbpConfig, Variant};
//! use hsbp::generator::{generate, DcsbmConfig};
//! use hsbp::metrics::nmi;
//!
//! // Sample a graph with 4 planted communities…
//! let data = generate(DcsbmConfig {
//!     num_vertices: 300,
//!     num_communities: 4,
//!     target_num_edges: 2500,
//!     within_between_ratio: 3.0,
//!     seed: 42,
//!     ..Default::default()
//! });
//! // …and recover them with the hybrid parallel algorithm.
//! let result = run_sbp(&data.graph, &SbpConfig::new(Variant::Hybrid, 7));
//! assert!(nmi(&data.ground_truth, &result.assignment) > 0.8);
//! ```

pub use hsbp_collections as collections;
pub use hsbp_generator as generator;
pub use hsbp_graph as graph;
pub use hsbp_metrics as metrics;
pub use hsbp_timing as timing;

/// The DCSBM blockmodel layer.
pub use hsbp_blockmodel as blockmodel;

/// The SBP algorithms and driver.
pub use hsbp_core as sbp;

/// Sharded divide-and-conquer SBP.
pub use hsbp_shard as shard;

/// The resident community-detection service (TCP line-delimited JSON).
pub use hsbp_serve as serve;

/// Benchmark harnesses and machine-readable report schemas.
pub use hsbp_bench as bench;

pub use hsbp_core::{
    refine_partition, run_sbp, run_sbp_budgeted, run_sbp_checked, CancelToken, Consolidation,
    DriftEvent, HsbpError, MathMode, McmcOutcome, RefineOutcome, RunBudget, RunStats, SbpConfig,
    SbpResult, StopCause, Variant, HSBP_MATH_ENV,
};
pub use hsbp_graph::{Graph, GraphBuilder};
pub use hsbp_shard::{
    run_exact_sbp, run_sharded_sbp, run_sharded_sbp_detailed, run_sharded_sbp_resumable,
    ExactConfig, ExactRun, FaultPlan, NetFaultPlan, PartitionStrategy, ShardConfig, ShardOutcome,
    ShardStatus, SupervisorConfig, SYNC_PROTOCOL_VERSION,
};
